package datastore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"simaibench/internal/clock"
)

// eachBackend runs fn against a live deployment of every backend — the
// contract test that makes "swap backends at runtime" trustworthy.
func eachBackend(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	for _, b := range Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			mgr, info, err := StartBackend(b, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { mgr.Stop() })
			s, err := Connect(info)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			fn(t, s)
		})
	}
}

func TestParseBackend(t *testing.T) {
	cases := map[string]Backend{
		"redis": Redis, "dragon": Dragon,
		"node-local": NodeLocal, "nodelocal": NodeLocal,
		"filesystem": FileSystem, "fs": FileSystem, "lustre": FileSystem,
	}
	for in, want := range cases {
		got, err := ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v,%v want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackend("carrier-pigeon"); err == nil {
		t.Error("unknown backend parsed")
	}
}

func TestBackendStringRoundTrip(t *testing.T) {
	for _, b := range Backends() {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("round trip %v: %v,%v", b, got, err)
		}
	}
}

func TestStageWriteRead(t *testing.T) {
	eachBackend(t, func(t *testing.T, s Store) {
		want := []byte("snapshot-bytes")
		if err := s.StageWrite("sim/step100", want); err != nil {
			t.Fatal(err)
		}
		got, err := s.StageRead("sim/step100")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q", got)
		}
	})
}

func TestReadUnstagedIsErrNotStaged(t *testing.T) {
	eachBackend(t, func(t *testing.T, s Store) {
		_, err := s.StageRead("never-written")
		if !errors.Is(err, ErrNotStaged) {
			t.Fatalf("err = %v, want ErrNotStaged", err)
		}
	})
}

func TestPoll(t *testing.T) {
	eachBackend(t, func(t *testing.T, s Store) {
		ok, err := s.Poll("k")
		if err != nil || ok {
			t.Fatalf("poll before write = %v,%v", ok, err)
		}
		s.StageWrite("k", []byte("v"))
		ok, err = s.Poll("k")
		if err != nil || !ok {
			t.Fatalf("poll after write = %v,%v", ok, err)
		}
	})
}

func TestCleanIdempotent(t *testing.T) {
	eachBackend(t, func(t *testing.T, s Store) {
		s.StageWrite("a", []byte("1"))
		s.StageWrite("b", []byte("2"))
		if err := s.Clean("a", "b", "ghost"); err != nil {
			t.Fatal(err)
		}
		if ok, _ := s.Poll("a"); ok {
			t.Fatal("a staged after clean")
		}
		if err := s.Clean("a"); err != nil {
			t.Fatalf("second clean: %v", err)
		}
	})
}

func TestOverwriteLatestWins(t *testing.T) {
	eachBackend(t, func(t *testing.T, s Store) {
		for i := 0; i < 5; i++ {
			s.StageWrite("k", []byte{byte(i)})
		}
		got, err := s.StageRead("k")
		if err != nil || got[0] != 4 {
			t.Fatalf("got %v,%v", got, err)
		}
	})
}

func TestKeysListing(t *testing.T) {
	eachBackend(t, func(t *testing.T, s Store) {
		want := []string{"sim0/step10", "sim1/step10", "train/status"}
		for _, k := range want {
			s.StageWrite(k, []byte("x"))
		}
		got, err := s.Keys()
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("keys = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("keys = %v, want %v", got, want)
			}
		}
	})
}

func TestLargeValue(t *testing.T) {
	eachBackend(t, func(t *testing.T, s Store) {
		// 1.2 MB — the per-rank message size of the original workflow.
		want := bytes.Repeat([]byte{0xCD}, 1_200_000)
		if err := s.StageWrite("big", want); err != nil {
			t.Fatal(err)
		}
		got, err := s.StageRead("big")
		if err != nil || !bytes.Equal(got, want) {
			t.Fatal("1.2MB round trip failed")
		}
	})
}

func TestConcurrentProducerConsumer(t *testing.T) {
	// The one-to-one pattern in miniature: a writer stages snapshots, a
	// reader polls for them asynchronously.
	eachBackend(t, func(t *testing.T, s Store) {
		const steps = 20
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // simulation
			defer wg.Done()
			for i := 0; i < steps; i++ {
				key := fmt.Sprintf("snap/%d", i)
				if err := s.StageWrite(key, []byte{byte(i)}); err != nil {
					t.Errorf("write %s: %v", key, err)
					return
				}
			}
		}()
		go func() { // trainer
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for i := 0; i < steps; i++ {
				key := fmt.Sprintf("snap/%d", i)
				v, err := WaitStaged(ctx, s, key, time.Millisecond)
				if err != nil {
					t.Errorf("wait %s: %v", key, err)
					return
				}
				if v[0] != byte(i) {
					t.Errorf("%s = %v", key, v)
					return
				}
			}
		}()
		wg.Wait()
	})
}

func TestWaitStagedTimeout(t *testing.T) {
	mgr, info, err := StartBackend(NodeLocal, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	s, _ := Connect(info)
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = WaitStaged(ctx, s, "never", time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestWaitStagedClockVirtual: the blocking staged read spends its poll
// intervals on the active emulation clock — under a clock.Virtual the
// waiter parks in virtual time between polls, a producer participant
// runs in the gaps, and the whole exchange costs ~no real time while
// the virtual wait reflects whole poll ticks.
func TestWaitStagedClockVirtual(t *testing.T) {
	mgr, info, err := StartBackend(NodeLocal, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	s, _ := Connect(info)
	defer s.Close()

	v := clock.NewVirtual()
	v.Join() // waiter
	v.Join() // producer
	wallStart := time.Now()
	go func() {
		defer v.Leave()
		v.Sleep(50 * time.Millisecond) // virtual production delay
		if err := s.StageWrite("late", []byte("payload")); err != nil {
			t.Error(err)
		}
	}()
	got, err := WaitStagedClock(context.Background(), v, s, "late", 10*time.Millisecond)
	v.Leave()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
	// The producer wrote at virtual 50ms; the waiter discovers it on its
	// 50ms poll tick (5 x 10ms), all in negligible real time.
	if el := v.NowNS(); el != int64(50*time.Millisecond) {
		t.Fatalf("virtual wait ended at %v, want 50ms", time.Duration(el))
	}
	if real := time.Since(wallStart); real > 2*time.Second {
		t.Fatalf("virtual wait consumed %v of real time", real)
	}
}

func TestMultiInstanceDeployments(t *testing.T) {
	for _, b := range []Backend{Redis, Dragon} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			mgr, err := NewServerManager(ServerConfig{Backend: b, Instances: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Stop()
			info, err := mgr.Start()
			if err != nil {
				t.Fatal(err)
			}
			if len(info.Addrs) != 3 {
				t.Fatalf("addrs = %v, want 3", info.Addrs)
			}
			s, err := Connect(info)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			for i := 0; i < 60; i++ {
				k := fmt.Sprintf("spread-%d", i)
				if err := s.StageWrite(k, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := s.Keys()
			if err != nil || len(keys) != 60 {
				t.Fatalf("keys = %d,%v want 60", len(keys), err)
			}
		})
	}
}

func TestTwoClientsShareDeployment(t *testing.T) {
	// Simulation and AI components hold separate client handles to the
	// same deployment — data written by one must be visible to the other.
	eachBackend(t, func(t *testing.T, s Store) {
		// s is client 1. Build client 2 from the same info by
		// redeploying Connect on a fresh manager is wrong — instead,
		// exercise via the manager used by eachBackend: reuse Backend()
		// and Keys() to prove shared visibility through a fresh connect.
		_ = s
	})
	// Direct version with explicit manager:
	for _, b := range Backends() {
		b := b
		t.Run(b.String()+"/two-clients", func(t *testing.T) {
			mgr, info, err := StartBackend(b, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Stop()
			c1, err := Connect(info)
			if err != nil {
				t.Fatal(err)
			}
			defer c1.Close()
			c2, err := Connect(info)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			if err := c1.StageWrite("shared", []byte("from-c1")); err != nil {
				t.Fatal(err)
			}
			got, err := c2.StageRead("shared")
			if err != nil || string(got) != "from-c1" {
				t.Fatalf("cross-client read = %q,%v", got, err)
			}
		})
	}
}

func TestServerManagerStopIdempotent(t *testing.T) {
	mgr, _, err := StartBackend(Redis, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestServerCrashSurfacesError(t *testing.T) {
	// Failure injection: kill the backend servers mid-run; clients must
	// report errors, not hang or panic.
	for _, b := range []Backend{Redis, Dragon} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			mgr, info, err := StartBackend(b, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			s, err := Connect(info)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.StageWrite("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			mgr.Stop()
			if err := s.StageWrite("k2", []byte("v")); err == nil {
				t.Fatal("write to dead server succeeded")
			}
		})
	}
}

func TestClientInfoJSONRoundTrip(t *testing.T) {
	// ClientInfo travels to remote components as JSON launch metadata.
	info := ClientInfo{Backend: Dragon, Addrs: []string{"1.2.3.4:5"}, Shards: 8}
	s := fmt.Sprintf("%v %v %v", info.Backend, info.Addrs, info.Shards)
	if s == "" {
		t.Fatal("unreachable")
	}
}

func TestPropertyRoundTripAllBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("starts live servers")
	}
	for _, b := range Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			mgr, info, err := StartBackend(b, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Stop()
			s, err := Connect(info)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			f := func(key string, value []byte) bool {
				if key == "" {
					key = "-"
				}
				if err := s.StageWrite(key, value); err != nil {
					return false
				}
				got, err := s.StageRead(key)
				return err == nil && bytes.Equal(got, value)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
