package datastore

import (
	"fmt"
	"net"
	"os"
	"path/filepath"

	"simaibench/internal/dragon"
	"simaibench/internal/redis"
)

// ServerConfig describes a deployment for the ServerManager: which
// backend, how many server instances (for in-memory stores, typically
// one per node, "as distinct instances or as a cluster"), and where
// file-backed stores should live.
type ServerConfig struct {
	Backend   Backend
	Instances int    // redis/dragon server count (default 1)
	Dir       string // node-local / filesystem root (default: temp dir)
	Shards    int    // file-store shards; the paper scales this with node count (default 1)
}

// ServerManager creates and configures data servers (the paper's
// ServerManager class): for in-memory backends it deploys server
// instances; for file-backed backends it establishes the directory
// structure. Stop tears everything down.
type ServerManager struct {
	cfg     ServerConfig
	info    ClientInfo
	redis   []*redis.Server
	mgrs    []*dragon.Manager
	lns     []net.Listener
	tempDir string
	started bool
}

// NewServerManager validates the configuration and returns a manager.
// Call Start to deploy.
func NewServerManager(cfg ServerConfig) (*ServerManager, error) {
	if cfg.Instances < 0 || cfg.Shards < 0 {
		return nil, fmt.Errorf("datastore: negative instances/shards")
	}
	if cfg.Instances == 0 {
		cfg.Instances = 1
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	return &ServerManager{cfg: cfg}, nil
}

// Start deploys the backend and returns connection info for clients.
func (m *ServerManager) Start() (ClientInfo, error) {
	if m.started {
		return m.info, nil
	}
	switch m.cfg.Backend {
	case Redis:
		for i := 0; i < m.cfg.Instances; i++ {
			s, err := redis.NewServer("127.0.0.1:0")
			if err != nil {
				m.Stop()
				return ClientInfo{}, err
			}
			m.redis = append(m.redis, s)
			m.info.Addrs = append(m.info.Addrs, s.Addr())
		}
	case Dragon:
		for i := 0; i < m.cfg.Instances; i++ {
			mgr := dragon.NewManager()
			ln, err := dragon.ListenAndServe(mgr, "127.0.0.1:0")
			if err != nil {
				mgr.Close()
				m.Stop()
				return ClientInfo{}, err
			}
			m.mgrs = append(m.mgrs, mgr)
			m.lns = append(m.lns, ln)
			m.info.Addrs = append(m.info.Addrs, ln.Addr().String())
		}
	case NodeLocal, FileSystem:
		dir := m.cfg.Dir
		if dir == "" {
			td, err := os.MkdirTemp("", "simaibench-"+m.cfg.Backend.String()+"-*")
			if err != nil {
				return ClientInfo{}, fmt.Errorf("datastore: temp dir: %w", err)
			}
			m.tempDir = td
			dir = td
		} else if err := os.MkdirAll(dir, 0o755); err != nil {
			return ClientInfo{}, fmt.Errorf("datastore: create %s: %w", dir, err)
		}
		m.info.Dir = dir
		m.info.Shards = m.cfg.Shards
	default:
		return ClientInfo{}, fmt.Errorf("datastore: unknown backend %v", m.cfg.Backend)
	}
	m.info.Backend = m.cfg.Backend
	m.started = true
	return m.info, nil
}

// Info returns the connection info from Start.
func (m *ServerManager) Info() ClientInfo { return m.info }

// Stop shuts down servers and removes manager-owned temp directories.
// Idempotent.
func (m *ServerManager) Stop() error {
	var first error
	for _, s := range m.redis {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.redis = nil
	for _, ln := range m.lns {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.lns = nil
	for _, mgr := range m.mgrs {
		mgr.Close()
	}
	m.mgrs = nil
	if m.tempDir != "" {
		if err := os.RemoveAll(m.tempDir); err != nil && first == nil {
			first = err
		}
		m.tempDir = ""
	}
	m.started = false
	return first
}

// StartBackend is a convenience that deploys a backend with default
// sizing under baseDir (for file-backed stores) and returns manager and
// client info together. An empty baseDir gives a fresh manager-owned
// temporary directory, cleaned up by Stop.
func StartBackend(b Backend, baseDir string) (*ServerManager, ClientInfo, error) {
	cfg := ServerConfig{Backend: b}
	if baseDir != "" && (b == NodeLocal || b == FileSystem) {
		cfg.Dir = filepath.Join(baseDir, b.String())
	}
	m, err := NewServerManager(cfg)
	if err != nil {
		return nil, ClientInfo{}, err
	}
	info, err := m.Start()
	if err != nil {
		return nil, ClientInfo{}, err
	}
	return m, info, nil
}
