package costmodel

import (
	"fmt"

	"simaibench/internal/cluster"
	"simaibench/internal/mpi"
)

// Collective-cost bridge: internal/mpi's algorithm cost models are
// deliberately topology-blind — they price steps through an abstract
// LinkCost — and cluster.Topology is deliberately algorithm-blind.
// This file joins them: a rank→node placement plus a dragonfly
// topology become the LinkCost and rank→router layout the mpi layer
// needs, and Params.CollAlgo selects which algorithm gets priced. The
// gradsync scenario family derives every AllReduce's DES cost here.

// TopologyLink adapts a dragonfly topology and a rank→node placement
// (nil = rank i on node i) to the mpi cost layer's LinkCost: the
// modeled seconds to move mb megabytes between two ranks' nodes under
// the resolved hop class.
func TopologyLink(topo cluster.Topology, rankNode []int) mpi.LinkCost {
	node := func(r int) int {
		if rankNode == nil {
			return r
		}
		return rankNode[r]
	}
	return func(a, b int, mb float64) float64 {
		return topo.TransferS(node(a), node(b), mb)
	}
}

// RankRouters maps each of n ranks to its dragonfly router under a
// rank→node placement (nil = rank i on node i) — the grouping the
// hierarchical algorithm reduces within.
func RankRouters(topo cluster.Topology, n int, rankNode []int) []int {
	routerOf := make([]int, n)
	for r := range routerOf {
		node := r
		if rankNode != nil {
			node = rankNode[r]
		}
		routerOf[r] = topo.Router(node)
	}
	return routerOf
}

// CollAllReduceCost prices one n-rank AllReduce of mb megabytes under
// an explicit algorithm over the topology (rankNode nil = rank i on
// node i): the per-step DES cost profile the gradsync harness charges
// per training step.
func CollAllReduceCost(algo mpi.CollAlgo, topo cluster.Topology, n int, mb float64, rankNode []int) mpi.CollCost {
	return mpi.AllReduceCost(algo, n, mb,
		RankRouters(topo, n, rankNode), TopologyLink(topo, rankNode))
}

// AllReduceCost prices one n-rank AllReduce under the params' CollAlgo
// (empty = flat, the legacy single-cost behavior). An unknown
// algorithm name is an error, surfaced before any simulation runs.
func (p Params) AllReduceCost(topo cluster.Topology, n int, mb float64, rankNode []int) (mpi.CollCost, error) {
	algo, err := mpi.ParseCollAlgo(p.CollAlgo)
	if err != nil {
		return mpi.CollCost{}, err
	}
	if err := topo.Validate(); err != nil {
		return mpi.CollCost{}, fmt.Errorf("costmodel: %w", err)
	}
	return CollAllReduceCost(algo, topo, n, mb, rankNode), nil
}
