package costmodel

import (
	"simaibench/internal/datastore"
	"simaibench/internal/des"
)

// Checkpoint staging: the recovery policies of internal/faults persist
// component state through the same backend deployments the workflow
// stages snapshots through, so checkpoint traffic pays the same costs —
// and contends on the same shared serialization points — as the staging
// traffic it rides alongside. A CheckpointOp is a SharedXfer with
// interruptibility: the node writing a checkpoint can itself crash at
// any phase, so the op must be abortable while queued on the shared
// service slots (des.Grant), while holding a service slot (des.Hold),
// and while the client-side transfer is in flight (the modeled transfer
// completes server-side but its completion is discarded — the client
// that asked for it is gone).
//
// For the node-local backend a "checkpoint" models partner
// checkpointing: the snapshot is mirrored into a neighbour's tmpfs over
// the node exchange bus, so the cost shape matches a local staging op
// and the data survives the owner's crash. The shared backends (Redis,
// Dragon, Lustre) persist checkpoints exactly like staged snapshots.

// CheckpointOp phases. ckInner tracks only the interruptible state
// machine; the client transfer keeps its own busy flag so an aborted
// in-flight transfer can drain before the op restarts.
const (
	ckIdle uint8 = iota
	ckQueued
	ckHolding
	ckInner
)

// CheckpointOp is one reusable, abortable checkpoint write or read of a
// fixed (backend, node, size). Construct with NewCheckpointWrite or
// NewCheckpointRead; Start at most one operation at a time; Abort tears
// down an in-progress operation from any phase (the done callback then
// never fires for it).
type CheckpointOp struct {
	env   *des.Env
	svc   *des.Resource // nil: no shared service queue (node-local, lustre)
	holdS float64
	inner *LocalXfer
	done  func()

	state     uint8
	innerBusy bool // client transfer in flight (survives Abort)
	discard   bool // Abort hit ckInner: swallow the completion
	restart   bool // Start arrived while an aborted transfer drains
	grant     *des.Grant
	hold      *des.Hold
	// grantGen stamps each queued claim. An Abort that arrives after
	// the slot was already granted — Grant.Cancel too late, the grant
	// callback scheduled but not yet run — bumps the generation, so the
	// orphaned callback releases the slot and stops instead of carrying
	// a dead client's checkpoint forward.
	grantGen int
}

// NewCheckpointWrite builds a reusable checkpoint write op against
// backend b from node: service queue (when b has one), then the
// client-side transfer chain. done fires when the checkpoint is
// durable; an Abort suppresses it.
func (m *Model) NewCheckpointWrite(b datastore.Backend, node int, mb float64, done func()) *CheckpointOp {
	return m.newCheckpointOp(b, node, mb, 1.0, done, m.NewLocalWrite)
}

// NewCheckpointRead builds a reusable checkpoint restore op (reads
// carry the same 0.85 cost scale as LocalRead), used by the
// checkpoint/restart recovery policy when a repaired node reloads its
// last durable state. The node argument of the returned op is fixed at
// construction like every flat transfer object.
func (m *Model) NewCheckpointRead(b datastore.Backend, node int, mb float64, done func()) *CheckpointOp {
	return m.newCheckpointOp(b, node, mb, 0.85, done, m.NewLocalRead)
}

func (m *Model) newCheckpointOp(b datastore.Backend, node int, mb, costScale float64, done func(),
	newInner func(datastore.Backend, int, float64, func()) *LocalXfer) *CheckpointOp {
	op := &CheckpointOp{env: m.env, done: done}
	op.inner = newInner(b, node, mb, op.innerDone)
	if datastore.SharedDeployment(b) {
		op.svc = m.sharedService(b) // nil for lustre: MDS/OST model it
		op.holdS = m.sharedHold(b, mb, costScale)
	}
	op.hold = des.NewHold(m.env, func() {
		op.svc.Release()
		op.startInner()
	})
	return op
}

// Start begins the checkpoint at the current virtual time. Starting
// while a previous operation is still active is the caller's bug —
// except immediately after an Abort whose client transfer has not
// drained yet, in which case the new operation begins when it does.
func (op *CheckpointOp) Start() {
	if op.innerBusy {
		op.restart = true
		return
	}
	op.begin()
}

func (op *CheckpointOp) begin() {
	if op.svc == nil {
		op.startInner()
		return
	}
	op.state = ckQueued
	gen := op.grantGen
	op.grant = op.svc.RequestCancellable(func() { op.onGrant(gen) })
}

// onGrant owns a service slot. A stale generation means the claim was
// aborted after the slot had already been handed over: the dead
// client's slot frees and nothing else happens.
func (op *CheckpointOp) onGrant(gen int) {
	if gen != op.grantGen {
		op.svc.Release()
		return
	}
	op.state = ckHolding
	op.hold.After(op.holdS)
}

func (op *CheckpointOp) startInner() {
	op.state = ckInner
	op.innerBusy = true
	op.inner.Start()
}

// innerDone is the client transfer's completion: normally the
// checkpoint is durable and done fires; after an Abort the completion
// is discarded, and a Start that arrived while draining begins now.
func (op *CheckpointOp) innerDone() {
	op.innerBusy = false
	if op.discard {
		op.discard = false
		op.state = ckIdle
		if op.restart {
			op.restart = false
			op.begin()
		}
		return
	}
	op.state = ckIdle
	op.done()
}

// Abort tears down the in-progress operation: a queued claim is
// withdrawn from the service FIFO, a held service slot is released (the
// server thread frees when its client dies), and an in-flight client
// transfer completes silently without firing done. Aborting an idle op
// is a no-op. Abort also cancels a Start deferred behind a draining
// transfer.
func (op *CheckpointOp) Abort() {
	op.restart = false
	switch op.state {
	case ckQueued:
		if !op.grant.Cancel() {
			// Too late to withdraw: the slot is granted and the grant
			// callback is already scheduled. Orphan it by generation;
			// it will release the slot when it runs.
			op.grantGen++
		}
		op.state = ckIdle
	case ckHolding:
		op.hold.Cancel()
		op.svc.Release()
		op.state = ckIdle
	case ckInner:
		op.discard = true
		op.state = ckIdle
	}
}

// Active reports whether an operation (or an aborted-but-draining
// transfer) is in progress.
func (op *CheckpointOp) Active() bool { return op.state != ckIdle || op.innerBusy }

// AnalyticCheckpoint returns the closed-form expected duration of one
// uncontended checkpoint write of mb megabytes against backend b:
// shared-deployment service time plus the client transfer. Used for
// Young/Daly optimal-interval reference points in the resilience
// tables.
func (m *Model) AnalyticCheckpoint(b datastore.Backend, mb float64) float64 {
	return m.sharedHold(b, mb, 1.0) + m.AnalyticLocal(b, mb, false)
}
