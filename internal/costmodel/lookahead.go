package costmodel

import (
	"math"

	"simaibench/internal/datastore"
)

// Cross-LP lookahead tagging for the parallel DES engine (des.LPSet).
// When the experiment harnesses partition the node space into per-node-
// block logical processes, the only candidate cross-LP edges are the
// model's shared serialization points: the Lustre MDS/OST queues and
// the multi-tenant Redis/Dragon service-slot queues. Everything else —
// the per-node exchange buses, cache/window effects, the in-memory
// transfer chains — is node-private state that partitions cleanly.
//
// The shared queues are des.Resources whose grant handoffs occur at the
// releaser's current time: their modeled minimum cross-LP latency is 0.
// A zero lookahead leaves no window in which LPs could safely run
// ahead, so any backend that routes through a shared queue forces the
// engine's sequential fallback; the backends with no cross-LP edges at
// all report +Inf and run embarrassingly parallel.

// LPLookaheadS reports the minimum modeled latency of backend b's
// cross-LP operations under per-node-block partitioning: +Inf when b
// touches only node-private resources (no cross-LP edges — LPs may run
// fully in parallel), 0 when b serializes through a shared queue whose
// grants carry no modeled delay (forcing the sequential fallback).
// shared selects the multi-tenant deployment mode (the scale-out
// harness), where Redis and Dragon gain a shared service-slot queue.
func LPLookaheadS(b datastore.Backend, shared bool) float64 {
	if b == datastore.FileSystem {
		return 0 // every transfer queues on the one MDS and OST pool
	}
	if shared && datastore.SharedDeployment(b) {
		return 0 // multi-tenant service slots serialize all tenants
	}
	return math.Inf(1) // node-local buses only: no cross-LP edges
}

// LPLookaheadS is the model-bound form of the package function,
// reporting the cross-LP lookahead this model's resources impose on a
// partitioned run of backend b.
func (m *Model) LPLookaheadS(b datastore.Backend, shared bool) float64 {
	return LPLookaheadS(b, shared)
}
