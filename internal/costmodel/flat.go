package costmodel

import (
	"simaibench/internal/datastore"
	"simaibench/internal/des"
)

// This file is the flat-callback face of the cost model: reusable
// operation objects that run on the scheduler goroutine instead of
// blocking a spawned process. Each object is allocated once per rank
// (all closures are built in the constructor) and Start()ed once per
// transfer, so the steady-state hot path performs zero allocations —
// every step is a value-record push into the event heap.
//
// The callback chains are exact CPS transforms of the corresponding
// process methods (LocalWrite/LocalRead, RemoteReadOne, FetchAll): they
// issue the same Schedule/Acquire/Release calls in the same order, so a
// simulation ported from processes to these objects replays the
// identical event sequence and produces bit-identical metrics.

// LocalXfer models one co-located stage_write/stage_read of a fixed
// (backend, node, size), completing through a done callback. Construct
// with NewLocalWrite/NewLocalRead; call Start at most once at a time.
type LocalXfer struct {
	env  *des.Env
	done func()

	// in-memory exchange (node-local, dragon, redis): one two-phase
	// closure (grant → timed hold → release) instead of a closure per
	// phase, halving the per-rank closure allocations of the sweeps.
	bus     *des.Resource
	hold    float64
	holding bool
	memStep func()

	// shared file system (lustre)
	lustre     bool
	metaOps    int
	i          int
	rpcS       float64
	mdsS       float64
	streamS    float64
	mds        *des.Resource
	ost        *des.Resource
	step       func()
	afterRPC   func()
	onMDSGrant func()
	onMDSDone  func()
	onOSTGrant func()
	onOSTDone  func()
}

// NewLocalWrite builds a reusable flat stage_write op; done fires when
// the transfer completes. The flat counterpart of LocalWrite.
func (m *Model) NewLocalWrite(b datastore.Backend, node int, mb float64, done func()) *LocalXfer {
	return m.newLocalXfer(b, node, mb, 1.0, done)
}

// NewLocalRead builds a reusable flat stage_read op (reads carry the
// same 0.85 cost scale as LocalRead).
func (m *Model) NewLocalRead(b datastore.Backend, node int, mb float64, done func()) *LocalXfer {
	return m.newLocalXfer(b, node, mb, 0.85, done)
}

func (m *Model) newLocalXfer(b datastore.Backend, node int, mb, costScale float64, done func()) *LocalXfer {
	x := m.allocLocalXfer()
	x.env, x.done = m.env, done
	if b == datastore.FileSystem {
		// CPS transform of lustreTransfer: metaOps × (client RPC sleep,
		// then the MDS queue), then one OST stream.
		x.lustre = true
		x.metaOps = m.params.LustreMetaOpsPerTransfer
		x.rpcS = m.params.LustreClientRPCS * costScale
		x.mdsS = m.params.LustreMDSServiceS
		x.streamS = mb / 1000 / m.params.LustreStreamBWGBps * costScale
		x.mds, x.ost = m.mds, m.ostPool
		x.step = func() {
			if x.i < x.metaOps {
				x.i++
				x.env.After(x.rpcS, x.afterRPC)
				return
			}
			x.ost.Request(x.onOSTGrant)
		}
		x.afterRPC = func() { x.mds.Request(x.onMDSGrant) }
		x.onMDSGrant = func() { x.env.After(x.mdsS, x.onMDSDone) }
		x.onMDSDone = func() { x.mds.Release(); x.step() }
		x.onOSTGrant = func() { x.env.After(x.streamS, x.onOSTDone) }
		x.onOSTDone = func() { x.ost.Release(); x.done() }
		return x
	}
	// CPS transform of localOp's in-memory branch: one timed hold of the
	// node's exchange bus. The hold duration is constant per (backend,
	// size), so it is computed once here.
	overhead, bw := m.localMemParams(b)
	x.hold = (overhead + mb/1000/m.cacheEff(bw, mb)) * costScale
	x.bus = m.nodeBus[node%len(m.nodeBus)]
	x.memStep = func() {
		if !x.holding {
			x.holding = true // granted: hold the bus for the transfer
			x.env.After(x.hold, x.memStep)
			return
		}
		x.holding = false
		x.bus.Release()
		x.done()
	}
	return x
}

// Start begins the transfer at the current virtual time.
func (x *LocalXfer) Start() {
	if x.lustre {
		x.i = 0
		x.step()
		return
	}
	x.bus.Request(x.memStep)
}

// RemoteXfer models a single non-local stage_read of a fixed (backend,
// size): one timed hold of the trainer NIC. The flat counterpart of
// RemoteReadOne.
type RemoteXfer struct {
	env     *des.Env
	nic     *des.Resource
	hold    float64
	done    func()
	onGrant func()
	onHold  func()
}

// NewRemoteRead builds a reusable flat non-local read op.
func (m *Model) NewRemoteRead(b datastore.Backend, mb float64, done func()) *RemoteXfer {
	lat, bw, _ := m.remoteParams(b, mb)
	x := &RemoteXfer{env: m.env, nic: m.nic(b, bw), hold: lat + mb/1000/bw, done: done}
	x.onGrant = func() { x.env.After(x.hold, x.onHold) }
	x.onHold = func() { x.nic.Release(); x.done() }
	return x
}

// Start begins the read at the current virtual time.
func (x *RemoteXfer) Start() {
	x.nic.Request(x.onGrant)
}

// EnsembleFetch models the trainer's blocking many-to-one read: n staged
// arrays fetched with the backend's client concurrency through the
// shared trainer NIC. The flat counterpart of FetchAll: Start launches
// all n fetch chains and done fires once every one has completed,
// awaited in index order exactly as FetchAll waits its spawned fetches.
type EnsembleFetch struct {
	env      *des.Env
	done     func()
	sem      *des.Resource
	nic      *des.Resource
	hold     float64
	fetches  []*fetchChain
	awaitIdx int
	await    func()
}

// fetchChain is one of the n per-source fetches: concurrency slot, then
// NIC hold, then completion.
type fetchChain struct {
	f         *EnsembleFetch
	completed bool
	notify    bool // the awaiter is parked on this fetch
	start     func()
	onSem     func()
	onNIC     func()
	onHold    func()
}

// NewEnsembleFetch builds a reusable flat ensemble read; allocate once
// per trainer and Start once per read period.
func (m *Model) NewEnsembleFetch(b datastore.Backend, n int, mb float64, done func()) *EnsembleFetch {
	lat, bw, conc := m.remoteParams(b, mb)
	if b == datastore.Dragon {
		// Many-to-one drains pay the dictionary's per-message incast
		// handling on top of the p2p setup cost.
		lat += m.params.DragonIncastLatencyS
	}
	if conc < 1 {
		conc = 1
	}
	f := &EnsembleFetch{
		env:  m.env,
		done: done,
		sem:  des.NewResource(m.env, conc),
		nic:  m.nic(b, bw),
		hold: lat + mb/1000/bw,
	}
	f.fetches = make([]*fetchChain, n)
	for i := range f.fetches {
		fc := &fetchChain{f: f}
		fc.start = func() { f.sem.Request(fc.onSem) }
		fc.onSem = func() { f.nic.Request(fc.onNIC) }
		fc.onNIC = func() { f.env.After(f.hold, fc.onHold) }
		fc.onHold = func() {
			f.nic.Release()
			f.sem.Release()
			fc.completed = true
			if fc.notify {
				fc.notify = false
				f.env.Schedule(f.env.Now(), f.await)
			}
		}
		f.fetches[i] = fc
	}
	// await replays WaitAll order semantics: skip completed fetches
	// synchronously, park on the first pending one.
	f.await = func() {
		for f.awaitIdx < len(f.fetches) && f.fetches[f.awaitIdx].completed {
			f.awaitIdx++
		}
		if f.awaitIdx == len(f.fetches) {
			f.done()
			return
		}
		f.fetches[f.awaitIdx].notify = true
	}
	return f
}

// Start launches all fetches at the current virtual time; done fires
// when the last completes. Start must not be called again before then.
func (f *EnsembleFetch) Start() {
	f.awaitIdx = 0
	now := f.env.Now()
	for _, fc := range f.fetches {
		fc.completed = false
		f.env.Schedule(now, fc.start)
	}
	f.await()
}
