package costmodel

import (
	"testing"

	"simaibench/internal/cluster"
	"simaibench/internal/mpi"
)

// TestCollAlgoCrossover pins the modeled crossover the gradsync
// scenario is built to show: at 512 ranks on the Aurora dragonfly the
// hierarchical AllReduce beats the ring at small messages (latency-
// bound: the ring pays 2(n-1) steps, the hierarchy keeps most steps
// router-local), and the ring wins at large messages (bandwidth-bound:
// its S/n segments beat the hierarchy's full-size up/down phases).
func TestCollAlgoCrossover(t *testing.T) {
	const ranks = 512
	topo := cluster.AuroraTopology(ranks)
	cost := func(algo mpi.CollAlgo, mb float64) float64 {
		return CollAllReduceCost(algo, topo, ranks, mb, nil).TimeS
	}
	for _, mb := range []float64{0.25, 4} {
		ring, hier := cost(mpi.AlgoRing, mb), cost(mpi.AlgoHier, mb)
		if hier >= ring {
			t.Errorf("at %g MB: hier %.6fs should beat ring %.6fs", mb, hier, ring)
		}
	}
	for _, mb := range []float64{64, 1024} {
		ring, hier := cost(mpi.AlgoRing, mb), cost(mpi.AlgoHier, mb)
		if ring >= hier {
			t.Errorf("at %g MB: ring %.6fs should beat hier %.6fs", mb, ring, hier)
		}
	}
	// The flat single-cost model is one step regardless of size.
	if c := CollAllReduceCost(mpi.AlgoFlat, topo, ranks, 4, nil); c.Steps != 1 {
		t.Errorf("flat steps = %d, want 1", c.Steps)
	}
}

// TestTopologyLinkPlacement: an explicit rank→node placement routes
// link costs through the placed nodes, not the rank indices.
func TestTopologyLinkPlacement(t *testing.T) {
	topo := cluster.AuroraTopology(64)
	// Ranks 0 and 1 placed on the same router's nodes vs across groups.
	same := TopologyLink(topo, []int{0, 1})(0, 1, 8)
	far := TopologyLink(topo, []int{0, 40})(0, 1, 8)
	if same >= far {
		t.Fatalf("same-router link %v should undercut cross-group link %v", same, far)
	}
	routers := RankRouters(topo, 3, []int{0, 3, 4})
	if routers[0] != routers[1] || routers[1] == routers[2] {
		t.Fatalf("RankRouters placement = %v, want [x x y]", routers)
	}
}

// TestParamsAllReduceCost covers the CollAlgo param dispatch: the zero
// value prices as flat, named algorithms dispatch, and a bad name or
// topology errors before simulation.
func TestParamsAllReduceCost(t *testing.T) {
	topo := cluster.AuroraTopology(8)
	p := Default()
	got, err := p.AllReduceCost(topo, 8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := CollAllReduceCost(mpi.AlgoFlat, topo, 8, 4, nil); got != want {
		t.Fatalf("default CollAlgo priced %+v, want flat %+v", got, want)
	}
	p.CollAlgo = "ring"
	got, err = p.AllReduceCost(topo, 8, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := CollAllReduceCost(mpi.AlgoRing, topo, 8, 4, nil); got != want {
		t.Fatalf("ring CollAlgo priced %+v, want %+v", got, want)
	}
	p.CollAlgo = "butterfly"
	if _, err := p.AllReduceCost(topo, 8, 4, nil); err == nil {
		t.Fatal("unknown CollAlgo should error")
	}
	p.CollAlgo = ""
	if _, err := p.AllReduceCost(cluster.Topology{}, 8, 4, nil); err == nil {
		t.Fatal("invalid topology should error")
	}
}
