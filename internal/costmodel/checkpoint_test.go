package costmodel

import (
	"math"
	"testing"

	"simaibench/internal/cluster"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
)

// newCkptModel builds a 2-node model for checkpoint tests.
func newCkptModel() (*des.Env, *Model) {
	env := des.NewEnv()
	return env, New(env, cluster.Aurora(2), Default())
}

func TestCheckpointWriteMatchesAnalytic(t *testing.T) {
	for _, b := range datastore.Backends() {
		env, m := newCkptModel()
		doneAt := -1.0
		op := m.NewCheckpointWrite(b, 0, 8, func() { doneAt = env.Now() })
		op.Start()
		env.Run()
		if doneAt < 0 {
			t.Fatalf("%v: checkpoint never completed", b)
		}
		want := m.AnalyticCheckpoint(b, 8)
		if math.Abs(doneAt-want) > 1e-12 {
			t.Errorf("%v: uncontended checkpoint took %v, analytic %v", b, doneAt, want)
		}
		if op.Active() {
			t.Errorf("%v: op still active after completion", b)
		}
	}
}

func TestCheckpointReadCheaperThanWrite(t *testing.T) {
	for _, b := range datastore.Backends() {
		env, m := newCkptModel()
		var wAt, rAt float64
		w := m.NewCheckpointWrite(b, 0, 8, func() { wAt = env.Now() })
		w.Start()
		env.Run()
		env2, m2 := newCkptModel()
		r := m2.NewCheckpointRead(b, 0, 8, func() { rAt = env2.Now() })
		r.Start()
		env2.Run()
		if rAt >= wAt {
			t.Errorf("%v: restore read %v not cheaper than write %v", b, rAt, wAt)
		}
	}
}

// TestCheckpointAbortWhileQueued: a checkpoint whose node dies while
// queued on the shared service slots must vanish from the FIFO without
// consuming a grant, and its done must never fire.
func TestCheckpointAbortWhileQueued(t *testing.T) {
	env, m := newCkptModel()
	svc := m.sharedService(datastore.Redis)
	// Saturate every service slot until t=100.
	for i := 0; i < svc.Cap(); i++ {
		svc.Request(func() { env.After(100, svc.Release) })
	}
	fired := false
	op := m.NewCheckpointWrite(datastore.Redis, 0, 8, func() { fired = true })
	op.Start()
	if !op.Active() {
		t.Fatal("queued op should be active")
	}
	env.After(10, op.Abort)
	env.Run()
	if fired {
		t.Fatal("aborted checkpoint's done fired")
	}
	if op.Active() {
		t.Fatal("aborted op still active")
	}
	if got := svc.Grants(); got != int64(svc.Cap()) {
		t.Fatalf("cancelled claim consumed a grant: %d grants, want %d", got, svc.Cap())
	}
}

// TestCheckpointAbortWhileHolding: aborting during the service hold
// releases the slot immediately so waiters behind it progress.
func TestCheckpointAbortWhileHolding(t *testing.T) {
	env, m := newCkptModel()
	svc := m.sharedService(datastore.Redis)
	for i := 0; i < svc.Cap()-1; i++ {
		svc.Request(func() { env.After(1000, svc.Release) })
	}
	fired := false
	op := m.NewCheckpointWrite(datastore.Redis, 0, 8, func() { fired = true })
	op.Start() // grabs the last slot, enters the timed hold
	holdS := m.sharedHold(datastore.Redis, 8, 1.0)
	waiterAt := -1.0
	env.After(holdS/4, func() { svc.Request(func() { waiterAt = env.Now(); svc.Release() }) })
	abortAt := holdS / 2
	env.After(abortAt, op.Abort)
	env.Run()
	if fired {
		t.Fatal("aborted checkpoint's done fired")
	}
	if math.Abs(waiterAt-abortAt) > 1e-15 {
		t.Fatalf("slot released at %v, want %v (abort time)", waiterAt, abortAt)
	}
}

// TestCheckpointAbortAfterGrantScheduled: the slot can be handed to a
// queued claim (Release → grant callback scheduled) in the same instant
// a crash aborts it — Grant.Cancel is too late. The orphaned grant must
// release the slot when it runs, and done must never fire.
func TestCheckpointAbortAfterGrantScheduled(t *testing.T) {
	env, m := newCkptModel()
	svc := m.sharedService(datastore.Redis)
	// Saturate every slot; the releases at t=5 each hand a slot straight
	// to a queued claim.
	for i := 0; i < svc.Cap(); i++ {
		svc.Request(func() { env.After(5, svc.Release) })
	}
	fired := false
	op := m.NewCheckpointWrite(datastore.Redis, 0, 8, func() { fired = true })
	op.Start()
	// At t=5, scheduled after the releases: the slot is already granted
	// (the grant callback is in the event queue) when the abort lands.
	env.After(5, op.Abort)
	env.Run()
	if fired {
		t.Fatal("done fired for a claim aborted after grant transfer")
	}
	if svc.InUse() != 0 {
		t.Fatalf("orphaned grant leaked a slot: %d in use", svc.InUse())
	}
	// The op is reusable afterwards.
	op.Start()
	env.Run()
	if !fired {
		t.Fatal("op unusable after orphaned-grant abort")
	}
}

// TestCheckpointAbortMidTransferThenRestart: an abort during the client
// transfer discards its completion; a Start issued while the orphan
// drains begins as soon as it has.
func TestCheckpointAbortMidTransferThenRestart(t *testing.T) {
	env, m := newCkptModel()
	var doneTimes []float64
	op := m.NewCheckpointWrite(datastore.NodeLocal, 0, 8, func() {
		doneTimes = append(doneTimes, env.Now())
	})
	full := m.AnalyticCheckpoint(datastore.NodeLocal, 8)
	op.Start()
	env.After(full/2, func() {
		op.Abort()
		op.Start() // re-checkpoint immediately; must wait for the drain
	})
	env.Run()
	if len(doneTimes) != 1 {
		t.Fatalf("done fired %d times, want 1 (restart only)", len(doneTimes))
	}
	// The restart begins when the orphaned transfer drains (at `full`),
	// then runs a full transfer.
	if want := 2 * full; math.Abs(doneTimes[0]-want) > 1e-12 {
		t.Fatalf("restarted checkpoint completed at %v, want %v", doneTimes[0], want)
	}
}

// TestCheckpointAbortIdleNoop: aborting an idle op changes nothing.
func TestCheckpointAbortIdleNoop(t *testing.T) {
	env, m := newCkptModel()
	fired := 0
	op := m.NewCheckpointWrite(datastore.Dragon, 1, 2, func() { fired++ })
	op.Abort()
	op.Start()
	env.Run()
	if fired != 1 || op.Active() {
		t.Fatalf("after idle abort + start: fired=%d active=%v", fired, op.Active())
	}
}
