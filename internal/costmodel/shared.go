package costmodel

import (
	"simaibench/internal/datastore"
	"simaibench/internal/des"
)

// Multi-tenant contention: when N concurrent workflows share one backend
// deployment (the scale-out scenarios), a staged operation first queues
// on the deployment's server-side service slots, then runs the ordinary
// client-side transfer chain. Which backends have such a shared
// serialization point — and how many slots a deployment offers — comes
// from internal/datastore (SharedDeployment, ServerConfig.ServiceSlots),
// so the queueing model stays tied to the ServerManager-level deployment
// shape:
//
//   - Redis / Dragon: a des.Resource with one slot per server instance,
//     held for the server-side service duration of each op.
//   - FileSystem: no extra queue — the model's Lustre MDS and OST pool
//     already are the shared serialization points, and every tenant's
//     transfers route through them.
//   - NodeLocal: nothing shared; tenants on dedicated nodes scale
//     perfectly (and co-located tenants still contend on the node bus).
//
// All of this is opt-in through NewSharedLocalWrite/NewSharedLocalRead;
// the single-tenant operations (LocalWrite, NewLocalWrite, …) never
// touch the shared queues, so the paper's single-tenant scenarios replay
// exactly the same event sequences as before.

// sharedParams returns the model's shared-deployment constants with any
// zero field replaced by the calibrated default. Callers routinely build
// a custom Params by tweaking one single-tenant constant and leaving the
// rest zero; a zero slot count silently modeling a 1-shard deployment
// would overstate contention ~4x, so zero means "calibrated", not "one".
func (m *Model) sharedParams() Params {
	p := m.params
	d := Default()
	if p.RedisSharedSlots <= 0 {
		p.RedisSharedSlots = d.RedisSharedSlots
	}
	if p.RedisSharedServiceS <= 0 {
		p.RedisSharedServiceS = d.RedisSharedServiceS
	}
	if p.RedisSharedBWGBps <= 0 {
		p.RedisSharedBWGBps = d.RedisSharedBWGBps
	}
	if p.DragonSharedSlots <= 0 {
		p.DragonSharedSlots = d.DragonSharedSlots
	}
	if p.DragonSharedServiceS <= 0 {
		p.DragonSharedServiceS = d.DragonSharedServiceS
	}
	if p.DragonSharedBWGBps <= 0 {
		p.DragonSharedBWGBps = d.DragonSharedBWGBps
	}
	return p
}

// sharedService returns (and lazily creates) the shared-deployment
// service queue for backend b, or nil when b has no server-side queue of
// its own (node-local: nothing shared; filesystem: MDS/OST model it).
func (m *Model) sharedService(b datastore.Backend) *des.Resource {
	if r, ok := m.sharedSvc[b]; ok {
		return r
	}
	cfg := datastore.ServerConfig{Backend: b}
	switch b {
	case datastore.Redis:
		cfg.Instances = m.sharedParams().RedisSharedSlots
	case datastore.Dragon:
		cfg.Instances = m.sharedParams().DragonSharedSlots
	default:
		m.sharedSvc[b] = nil
		return nil
	}
	r := des.NewResource(m.env, cfg.ServiceSlots())
	m.sharedSvc[b] = r
	return r
}

// sharedHold returns the server-side service duration of one mb-MB op
// against backend b's shared deployment.
func (m *Model) sharedHold(b datastore.Backend, mb, costScale float64) float64 {
	p := m.sharedParams()
	switch b {
	case datastore.Redis:
		return (p.RedisSharedServiceS + mb/1000/p.RedisSharedBWGBps) * costScale
	case datastore.Dragon:
		return (p.DragonSharedServiceS + mb/1000/p.DragonSharedBWGBps) * costScale
	}
	return 0
}

// SharedWaitS reports the observed mean queueing delay (virtual seconds
// per granted op) at backend b's shared serialization point: the service
// queue for Redis/Dragon, the Lustre MDS for the file system, zero for
// node-local. This is the "backend throughput collapse" observable of
// the scale-out tables.
func (m *Model) SharedWaitS(b datastore.Backend) float64 {
	switch b {
	case datastore.FileSystem:
		return m.mds.AvgWaitS()
	case datastore.Redis, datastore.Dragon:
		if r := m.sharedService(b); r != nil {
			return r.AvgWaitS()
		}
	}
	return 0
}

// SharedXfer models one staged operation against a shared multi-tenant
// deployment: queue for a server-side service slot (when the backend has
// one), hold it for the service duration, then run the ordinary
// client-side transfer. Construct with NewSharedLocalWrite or
// NewSharedLocalRead; like LocalXfer it is allocated once per rank and
// Started once per transfer, allocation-free in steady state.
type SharedXfer struct {
	env   *des.Env
	svc   *des.Resource // nil: no shared serialization point
	holdS float64
	inner *LocalXfer
	// step is the two-phase service closure (grant → timed hold →
	// release + inner transfer); one closure per rank, reused across
	// every Start, like LocalXfer's memStep.
	holding bool
	step    func()
}

// NewSharedLocalWrite builds a reusable stage_write op against a shared
// deployment of backend b; done fires when the transfer completes.
func (m *Model) NewSharedLocalWrite(b datastore.Backend, node int, mb float64, done func()) *SharedXfer {
	return m.newSharedXfer(b, node, mb, 1.0, m.NewLocalWrite(b, node, mb, done))
}

// NewSharedLocalRead builds a reusable stage_read op against a shared
// deployment (reads carry the same 0.85 cost scale as LocalRead).
func (m *Model) NewSharedLocalRead(b datastore.Backend, node int, mb float64, done func()) *SharedXfer {
	return m.newSharedXfer(b, node, mb, 0.85, m.NewLocalRead(b, node, mb, done))
}

func (m *Model) newSharedXfer(b datastore.Backend, node int, mb, costScale float64, inner *LocalXfer) *SharedXfer {
	x := m.allocSharedXfer()
	x.env, x.inner = m.env, inner
	if !datastore.SharedDeployment(b) {
		return x
	}
	x.svc = m.sharedService(b)
	if x.svc == nil {
		// FileSystem: the inner transfer already queues on the shared
		// MDS/OST resources.
		return x
	}
	x.holdS = m.sharedHold(b, mb, costScale)
	x.step = func() {
		if !x.holding {
			x.holding = true // granted: hold a service slot
			x.env.After(x.holdS, x.step)
			return
		}
		x.holding = false
		x.svc.Release()
		x.inner.Start()
	}
	return x
}

// Start begins the operation at the current virtual time. Start must not
// be called again before the done callback fires.
func (x *SharedXfer) Start() {
	if x.svc == nil {
		x.inner.Start()
		return
	}
	x.svc.Request(x.step)
}
