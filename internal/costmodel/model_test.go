package costmodel

import (
	"math"
	"testing"

	"simaibench/internal/cluster"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
)

func newModel(nodes int) (*des.Env, *Model) {
	env := des.NewEnv()
	return env, New(env, cluster.Aurora(nodes), Default())
}

// runOne executes fn inside a single DES process and returns its result.
func runOne(env *des.Env, fn func(p *des.Proc) float64) float64 {
	var out float64
	env.Spawn("t", func(p *des.Proc) { out = fn(p) })
	env.Run()
	return out
}

func TestUncontendedLocalMatchesAnalytic(t *testing.T) {
	for _, b := range []datastore.Backend{datastore.NodeLocal, datastore.Dragon, datastore.Redis, datastore.FileSystem} {
		for _, mb := range []float64{0.4, 2, 8, 32} {
			env, m := newModel(8)
			got := runOne(env, func(p *des.Proc) float64 {
				return m.LocalWrite(p, b, 0, mb)
			})
			want := m.AnalyticLocal(b, mb, false)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%v %vMB: DES %v vs analytic %v", b, mb, got, want)
			}
		}
	}
}

func TestReadCheaperThanWrite(t *testing.T) {
	for _, b := range []datastore.Backend{datastore.NodeLocal, datastore.Dragon, datastore.Redis, datastore.FileSystem} {
		env, m := newModel(8)
		var w, r float64
		env.Spawn("t", func(p *des.Proc) {
			w = m.LocalWrite(p, b, 0, 8)
			r = m.LocalRead(p, b, 0, 8)
		})
		env.Run()
		if r >= w {
			t.Errorf("%v: read %v >= write %v", b, r, w)
		}
	}
}

func TestInMemoryThroughputNonMonotonic(t *testing.T) {
	// Fig 3 shape: throughput rises with size then dips at 32 MB for the
	// in-memory stores (cache spill).
	for _, b := range []datastore.Backend{datastore.NodeLocal, datastore.Dragon, datastore.Redis} {
		tput := func(mb float64) float64 {
			env, m := newModel(8)
			d := runOne(env, func(p *des.Proc) float64 { return m.LocalWrite(p, b, 0, mb) })
			return mb / 1000 / d
		}
		t04, t8, t32 := tput(0.4), tput(8), tput(32)
		if t8 <= t04 {
			t.Errorf("%v: throughput not rising 0.4->8 MB (%v vs %v)", b, t04, t8)
		}
		if t32 >= t8 {
			t.Errorf("%v: no cache dip at 32 MB (%v vs %v)", b, t32, t8)
		}
	}
}

func TestFilesystemThroughputMonotonic(t *testing.T) {
	// Fig 3 shape: file system throughput rises monotonically with size.
	prev := -1.0
	for _, mb := range []float64{0.4, 2, 8, 32} {
		env, m := newModel(8)
		d := runOne(env, func(p *des.Proc) float64 {
			return m.LocalWrite(p, datastore.FileSystem, 0, mb)
		})
		tput := mb / 1000 / d
		if tput <= prev {
			t.Fatalf("filesystem throughput not monotonic at %v MB: %v <= %v", mb, tput, prev)
		}
		prev = tput
	}
}

func TestBackendOrderingAtPeak(t *testing.T) {
	// Fig 3: node-local >= dragon > redis for local exchange.
	tput := func(b datastore.Backend) float64 {
		env, m := newModel(8)
		d := runOne(env, func(p *des.Proc) float64 { return m.LocalWrite(p, b, 0, 8) })
		return 8.0 / 1000 / d
	}
	nl, dr, rd := tput(datastore.NodeLocal), tput(datastore.Dragon), tput(datastore.Redis)
	if !(nl >= dr && dr > rd) {
		t.Fatalf("peak ordering violated: node-local %v, dragon %v, redis %v", nl, dr, rd)
	}
}

func TestMDSContentionEmergesAtScale(t *testing.T) {
	// Many concurrent Lustre writers must see queueing delay that a
	// single writer does not — the mechanism behind Fig 3b/4d.
	solo := func() float64 {
		env, m := newModel(8)
		return runOne(env, func(p *des.Proc) float64 {
			return m.LocalWrite(p, datastore.FileSystem, 0, 2)
		})
	}()
	env, m := newModel(512)
	var worst float64
	const writers = 2000
	done := 0
	for i := 0; i < writers; i++ {
		env.Spawn("w", func(p *des.Proc) {
			d := m.LocalWrite(p, datastore.FileSystem, 0, 2)
			if d > worst {
				worst = d
			}
			done++
		})
	}
	env.Run()
	if done != writers {
		t.Fatalf("only %d writers finished", done)
	}
	if worst < 5*solo {
		t.Fatalf("no MDS contention: worst %v vs solo %v", worst, solo)
	}
}

func TestInMemoryLocalUnaffectedByScale(t *testing.T) {
	// Fig 3: in-memory stores exchange data locally, so per-op time is
	// scale-independent (8 vs 512 nodes) when each node carries the same
	// local load.
	dur := func(nodes int) float64 {
		env, m := newModel(nodes)
		return runOne(env, func(p *des.Proc) float64 {
			return m.LocalWrite(p, datastore.NodeLocal, 0, 8)
		})
	}
	if d8, d512 := dur(8), dur(512); math.Abs(d8-d512) > 1e-12 {
		t.Fatalf("node-local op time varies with scale: %v vs %v", d8, d512)
	}
}

func TestRemoteRedisReadPoor(t *testing.T) {
	// Fig 5a: Redis non-local read throughput far below Dragon's.
	env, m := newModel(2)
	var redis, dragon float64
	env.Spawn("t", func(p *des.Proc) {
		redis = m.RemoteReadOne(p, datastore.Redis, 8)
		dragon = m.RemoteReadOne(p, datastore.Dragon, 8)
	})
	env.Run()
	if redis < 3*dragon {
		t.Fatalf("redis remote read (%v) should be >> dragon (%v)", redis, dragon)
	}
}

func TestDragonRemotePeaksNearWindow(t *testing.T) {
	// Fig 5: Dragon throughput peaks around ~10 MB then declines.
	tput := func(mb float64) float64 {
		env, m := newModel(2)
		d := runOne(env, func(p *des.Proc) float64 {
			return m.RemoteReadOne(p, datastore.Dragon, mb)
		})
		return mb / 1000 / d
	}
	t1, t10, t128 := tput(1), tput(10), tput(128)
	if t10 <= t1 {
		t.Fatalf("dragon throughput not rising to window: %v vs %v", t1, t10)
	}
	if t128 >= t10 {
		t.Fatalf("dragon throughput not declining past window: %v vs %v", t128, t10)
	}
}

func TestFSRemoteCatchesDragonAtLargeSizes(t *testing.T) {
	// Fig 5: FS throughput grows with size, becoming comparable to
	// Dragon at the largest messages.
	ratio := func(mb float64) float64 {
		env, m := newModel(2)
		var fs, dr float64
		env.Spawn("t", func(p *des.Proc) {
			fs = m.RemoteReadOne(p, datastore.FileSystem, mb)
			dr = m.RemoteReadOne(p, datastore.Dragon, mb)
		})
		env.Run()
		return fs / dr // >1 means FS slower
	}
	small, large := ratio(1), ratio(128)
	if small < 1.2 {
		t.Fatalf("FS should lag dragon at small sizes: ratio %v", small)
	}
	if large >= small/1.5 {
		t.Fatalf("FS/dragon gap should shrink with size: %v -> %v", small, large)
	}
}

func TestFetchAllBlocksForAllMessages(t *testing.T) {
	env, m := newModel(8)
	one := runOne(env, func(p *des.Proc) float64 {
		return m.FetchAll(p, datastore.Dragon, 1, 4)
	})
	env2, m2 := newModel(8)
	many := runOne(env2, func(p *des.Proc) float64 {
		return m2.FetchAll(p, datastore.Dragon, 64, 4)
	})
	if many <= one {
		t.Fatalf("64-message fetch (%v) not slower than 1-message (%v)", many, one)
	}
}

func TestManyToOneSmallMessagesDragonSlowerThanFS(t *testing.T) {
	// Fig 6b: at 128 nodes and small messages, Dragon's per-message
	// latency makes the ensemble read significantly slower than FS.
	fetch := func(b datastore.Backend, mb float64) float64 {
		env, m := newModel(128)
		return runOne(env, func(p *des.Proc) float64 {
			return m.FetchAll(p, b, 128, mb)
		})
	}
	drSmall, fsSmall := fetch(datastore.Dragon, 1), fetch(datastore.FileSystem, 1)
	if drSmall < 2*fsSmall {
		t.Fatalf("dragon (%v) should be >=2x slower than FS (%v) at 1 MB many-to-one", drSmall, fsSmall)
	}
	// ...and comparable at large sizes.
	drBig, fsBig := fetch(datastore.Dragon, 128), fetch(datastore.FileSystem, 128)
	ratio := drBig / fsBig
	if ratio > 2.5 || ratio < 0.4 {
		t.Fatalf("dragon/FS at 128 MB should be comparable, got ratio %v (%v vs %v)", ratio, drBig, fsBig)
	}
}

func TestRedisWorstForManyToOne(t *testing.T) {
	// Fig 6: Redis remains the slowest backend at scale.
	fetch := func(b datastore.Backend) float64 {
		env, m := newModel(128)
		return runOne(env, func(p *des.Proc) float64 {
			return m.FetchAll(p, b, 128, 8)
		})
	}
	rd, dr, fs := fetch(datastore.Redis), fetch(datastore.Dragon), fetch(datastore.FileSystem)
	if rd <= dr || rd <= fs {
		t.Fatalf("redis (%v) should be slowest (dragon %v, fs %v)", rd, dr, fs)
	}
}

func TestNICBoundsAggregateFetchRate(t *testing.T) {
	// Total fetch time can never beat the NIC injection bound N*S/BW.
	env, m := newModel(128)
	const n, mb = 128, 64.0
	got := runOne(env, func(p *des.Proc) float64 {
		return m.FetchAll(p, datastore.FileSystem, n, mb)
	})
	nicFloor := float64(n) * mb / 1000 / cluster.Aurora(128).NICGBps
	if got < nicFloor*0.99 {
		t.Fatalf("fetch %v beat NIC floor %v", got, nicFloor)
	}
}

func TestCacheEffMonotoneDecline(t *testing.T) {
	_, m := newModel(8)
	prev := math.Inf(1)
	for _, mb := range []float64{1, 8, 16, 32, 64, 128} {
		eff := m.cacheEff(2.5, mb)
		if eff > prev+1e-12 {
			t.Fatalf("cacheEff increased at %v MB", mb)
		}
		if eff > 2.5 || eff <= 0 {
			t.Fatalf("cacheEff out of range: %v", eff)
		}
		prev = eff
	}
	if m.cacheEff(2.5, 4) != 2.5 {
		t.Fatal("cacheEff should be flat below the share")
	}
}

func TestNodeLocalHasNoRemoteModel(t *testing.T) {
	env, m := newModel(2)
	panicked := false
	env.Spawn("t", func(p *des.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		m.RemoteReadOne(p, datastore.NodeLocal, 1)
	})
	env.Run()
	if !panicked {
		t.Fatal("node-local remote read did not panic (tmpfs is not remotely readable, per the paper)")
	}
}
