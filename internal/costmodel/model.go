package costmodel

import (
	"fmt"
	"math"

	"simaibench/internal/cluster"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
)

// Model binds the parameter set to a DES environment and a cluster spec,
// owning the shared contention resources (per-node buses, the Lustre MDS
// and OST pool, the trainer NIC).
type Model struct {
	env    *des.Env
	spec   cluster.Spec
	params Params

	nodeBus []*des.Resource // per-node local-exchange concurrency
	mds     *des.Resource   // single shared Lustre metadata server
	ostPool *des.Resource   // OST stream slots

	trainerNIC map[datastore.Backend]*des.Resource
	sharedSvc  map[datastore.Backend]*des.Resource // multi-tenant shared-deployment service queues (see shared.go)

	// Chunked arenas for the flat transfer objects: the sweeps build one
	// LocalXfer/SharedXfer per rank, and handing them out of fixed-size
	// chunks costs one allocation per chunk instead of one per rank.
	// Outstanding pointers stay valid because a full chunk is abandoned
	// in place, never copied.
	localArena  []LocalXfer
	sharedArena []SharedXfer
}

// xferArenaChunk is the arena chunk size; 64 fits a 512-node sweep's
// per-model rank count in a handful of allocations without oversizing
// the 2-node cases.
const xferArenaChunk = 64

// allocLocalXfer hands out one zeroed LocalXfer from the arena.
func (m *Model) allocLocalXfer() *LocalXfer {
	if len(m.localArena) == cap(m.localArena) {
		m.localArena = make([]LocalXfer, 0, xferArenaChunk)
	}
	m.localArena = append(m.localArena, LocalXfer{})
	return &m.localArena[len(m.localArena)-1]
}

// allocSharedXfer hands out one zeroed SharedXfer from the arena.
func (m *Model) allocSharedXfer() *SharedXfer {
	if len(m.sharedArena) == cap(m.sharedArena) {
		m.sharedArena = make([]SharedXfer, 0, xferArenaChunk)
	}
	m.sharedArena = append(m.sharedArena, SharedXfer{})
	return &m.sharedArena[len(m.sharedArena)-1]
}

// New builds a model for env/spec with the given parameters.
func New(env *des.Env, spec cluster.Spec, p Params) *Model {
	m := &Model{env: env, spec: spec, params: p,
		trainerNIC: map[datastore.Backend]*des.Resource{},
		sharedSvc:  map[datastore.Backend]*des.Resource{}}
	m.nodeBus = make([]*des.Resource, spec.Nodes)
	for i := range m.nodeBus {
		m.nodeBus[i] = des.NewResource(env, p.NodeBusConcurrency)
	}
	m.mds = des.NewResource(env, 1)
	m.ostPool = des.NewResource(env, p.LustreOSTConcurrency)
	return m
}

// Params returns the active parameter set.
func (m *Model) Params() Params { return m.params }

// cacheEff returns bandwidth degraded by L3 spill beyond the per-process
// cache share: per doubling above the share, bandwidth shrinks by
// CacheSpillFactor of itself.
func (m *Model) cacheEff(bw, mb float64) float64 {
	share := m.params.CacheShareMB
	if mb <= share {
		return bw
	}
	doublings := math.Log2(mb / share)
	return bw / (1 + m.params.CacheSpillFactor*doublings)
}

// windowEff degrades Dragon's remote bandwidth beyond its protocol
// window, giving the ~10 MB peak of Fig 5.
func (m *Model) windowEff(bw, mb float64) float64 {
	w := m.params.DragonWindowMB
	if mb <= w {
		return bw
	}
	doublings := math.Log2(mb / w)
	return bw / (1 + m.params.DragonWindowFactor*doublings)
}

// localMemParams returns (overhead, peak bandwidth) for the in-memory
// stores' node-local exchange.
func (m *Model) localMemParams(b datastore.Backend) (float64, float64) {
	switch b {
	case datastore.NodeLocal:
		return m.params.NodeLocalOverheadS, m.params.NodeLocalBWGBps
	case datastore.Dragon:
		return m.params.DragonOverheadS, m.params.DragonBWGBps
	case datastore.Redis:
		return m.params.RedisOverheadS, m.params.RedisBWGBps
	}
	panic(fmt.Sprintf("costmodel: %v is not an in-memory backend", b))
}

// LocalWrite blocks the calling process for the modeled duration of a
// co-located stage_write of mb megabytes on node, returning the elapsed
// virtual seconds. LocalRead is symmetric: the paper's Fig 3 shows
// near-mirrored read/write profiles for local exchange, with reads
// slightly cheaper (no temp-file rename / no dirty-page copy-back).
func (m *Model) LocalWrite(p *des.Proc, b datastore.Backend, node int, mb float64) float64 {
	return m.localOp(p, b, node, mb, 1.0)
}

// LocalRead models a co-located stage_read.
func (m *Model) LocalRead(p *des.Proc, b datastore.Backend, node int, mb float64) float64 {
	return m.localOp(p, b, node, mb, 0.85)
}

func (m *Model) localOp(p *des.Proc, b datastore.Backend, node int, mb float64, costScale float64) float64 {
	start := p.Now()
	if b == datastore.FileSystem {
		m.lustreTransfer(p, mb, costScale)
		return p.Now() - start
	}
	overhead, bw := m.localMemParams(b)
	eff := m.cacheEff(bw, mb)
	hold := (overhead + mb/1000/eff) * costScale
	m.nodeBus[node%len(m.nodeBus)].Use(p, hold)
	return p.Now() - start
}

// lustreTransfer models one staged read/write against the shared file
// system: metadata ops through the single MDS queue (this is where the
// 512-node collapse comes from), then an OST stream for the payload.
func (m *Model) lustreTransfer(p *des.Proc, mb float64, costScale float64) {
	for i := 0; i < m.params.LustreMetaOpsPerTransfer; i++ {
		p.Sleep(m.params.LustreClientRPCS * costScale)
		m.mds.Use(p, m.params.LustreMDSServiceS)
	}
	stream := mb / 1000 / m.params.LustreStreamBWGBps * costScale
	m.ostPool.Use(p, stream)
}

// remoteParams returns (latency, bandwidth(mb), concurrency) for one
// non-local fetch stream of backend b.
func (m *Model) remoteParams(b datastore.Backend, mb float64) (lat, bw float64, conc int) {
	switch b {
	case datastore.Redis:
		return m.params.RedisRemoteLatencyS, m.params.RedisRemoteBWGBps, m.params.RedisRemoteConcurrency
	case datastore.Dragon:
		return m.params.DragonRemoteLatencyS,
			m.windowEff(m.params.DragonRemoteBWGBps, mb),
			m.params.DragonRemoteConcurrency
	case datastore.FileSystem:
		// Per-stream cost mirrors a Lustre read: client RPCs for
		// metadata plus OST streaming.
		lat := float64(m.params.LustreMetaOpsPerTransfer) *
			(m.params.LustreClientRPCS + m.params.LustreMDSServiceS)
		return lat, m.params.LustreStreamBWGBps, m.params.FSRemoteConcurrency
	}
	panic(fmt.Sprintf("costmodel: backend %v has no remote model (node-local cannot be read remotely)", b))
}

// RemoteReadOne models a single non-local stage_read of mb megabytes
// (Fig 5's 2-node experiment), returning elapsed seconds.
func (m *Model) RemoteReadOne(p *des.Proc, b datastore.Backend, mb float64) float64 {
	start := p.Now()
	lat, bw, _ := m.remoteParams(b, mb)
	nic := m.nic(b, bw)
	nic.Use(p, lat+mb/1000/bw)
	return p.Now() - start
}

// nic returns the trainer's NIC resource for backend b: capacity is how
// many full-rate streams of this backend the NIC admits, enforcing the
// aggregate injection-bandwidth bound in many-to-one incast.
func (m *Model) nic(b datastore.Backend, perFlowBW float64) *des.Resource {
	if r, ok := m.trainerNIC[b]; ok {
		return r
	}
	capacity := int(m.spec.NICGBps / perFlowBW)
	if capacity < 1 {
		capacity = 1
	}
	r := des.NewResource(m.env, capacity)
	m.trainerNIC[b] = r
	return r
}

// FetchAll models the trainer's blocking ensemble read: n staged arrays
// of mb megabytes each, fetched with the backend's effective client
// concurrency through the shared trainer NIC. It blocks the calling
// process until every message has arrived (the paper's AI component
// "blocks until all data for that specific update iteration has
// arrived") and returns the elapsed virtual seconds.
func (m *Model) FetchAll(p *des.Proc, b datastore.Backend, n int, mb float64) float64 {
	start := p.Now()
	lat, bw, conc := m.remoteParams(b, mb)
	if b == datastore.Dragon {
		// Many-to-one drains pay the dictionary's per-message incast
		// handling on top of the p2p setup cost.
		lat += m.params.DragonIncastLatencyS
	}
	if conc < 1 {
		conc = 1
	}
	nic := m.nic(b, bw)
	sem := des.NewResource(p.Env(), conc)
	procs := make([]*des.Proc, n)
	for i := 0; i < n; i++ {
		procs[i] = p.Env().Spawn("fetch", func(fp *des.Proc) {
			sem.Acquire(fp)
			nic.Use(fp, lat+mb/1000/bw)
			sem.Release()
		})
	}
	for _, fp := range procs {
		p.Wait(fp.Done())
	}
	return p.Now() - start
}

// AnalyticLocal returns the closed-form expected duration of a local
// operation absent contention — used by tests to check that the DES
// reduces to the analytic model under no load, and by documentation.
func (m *Model) AnalyticLocal(b datastore.Backend, mb float64, read bool) float64 {
	scale := 1.0
	if read {
		scale = 0.85
	}
	if b == datastore.FileSystem {
		meta := float64(m.params.LustreMetaOpsPerTransfer) *
			(m.params.LustreClientRPCS*scale + m.params.LustreMDSServiceS)
		return meta + mb/1000/m.params.LustreStreamBWGBps*scale
	}
	overhead, bw := m.localMemParams(b)
	return (overhead + mb/1000/m.cacheEff(bw, mb)) * scale
}
