package costmodel

import (
	"math"
	"testing"

	"simaibench/internal/cluster"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
)

// sharedBurst starts k concurrent shared writes of mb MB on distinct
// nodes at t=0 and returns each op's completion latency.
func sharedBurst(env *des.Env, m *Model, b datastore.Backend, k int, mb float64) []float64 {
	lat := make([]float64, 0, k)
	for i := 0; i < k; i++ {
		start := env.Now()
		x := m.NewSharedLocalWrite(b, i, mb, func() { lat = append(lat, env.Now()-start) })
		x.Start()
	}
	env.Run()
	return lat
}

func TestSharedNodeLocalBypassesQueue(t *testing.T) {
	// Node-local has no shared deployment: the shared op is exactly the
	// plain local op, at any burst width (distinct nodes).
	env, m := newModel(16)
	want := m.AnalyticLocal(datastore.NodeLocal, 8, false)
	for _, d := range sharedBurst(env, m, datastore.NodeLocal, 16, 8) {
		if math.Abs(d-want) > 1e-12 {
			t.Fatalf("node-local shared op = %v, want analytic %v (no queueing)", d, want)
		}
	}
	if w := m.SharedWaitS(datastore.NodeLocal); w != 0 {
		t.Fatalf("node-local shared wait = %v, want 0", w)
	}
}

func TestSharedRedisQueuesBeyondSlots(t *testing.T) {
	p := Default()
	env := des.NewEnv()
	m := New(env, cluster.Aurora(16), p)
	k := p.RedisSharedSlots * 4
	lat := sharedBurst(env, m, datastore.Redis, k, 8)
	if len(lat) != k {
		t.Fatalf("completed %d ops, want %d", len(lat), k)
	}
	// A burst 4x wider than the slot pool must show queueing: the
	// slowest op waits at least 3 service times longer than the fastest.
	minL, maxL := lat[0], lat[0]
	for _, d := range lat {
		minL = math.Min(minL, d)
		maxL = math.Max(maxL, d)
	}
	hold := m.sharedHold(datastore.Redis, 8, 1.0)
	if maxL-minL < 3*hold*0.99 {
		t.Fatalf("burst spread = %v, want >= %v (3 queued service rounds)", maxL-minL, 3*hold)
	}
	if m.SharedWaitS(datastore.Redis) <= 0 {
		t.Fatal("redis shared wait not recorded")
	}
}

func TestSharedSingleOpAddsOnlyServiceTime(t *testing.T) {
	// One tenant, no contention: the shared op costs the plain local op
	// plus exactly one server-side service hold.
	for _, b := range []datastore.Backend{datastore.Redis, datastore.Dragon} {
		env, m := newModel(4)
		lat := sharedBurst(env, m, b, 1, 8)
		want := m.AnalyticLocal(b, 8, false) + m.sharedHold(b, 8, 1.0)
		if math.Abs(lat[0]-want) > 1e-12 {
			t.Fatalf("%s single shared op = %v, want %v", b, lat[0], want)
		}
	}
}

func TestSharedFilesystemRoutesThroughMDS(t *testing.T) {
	// The filesystem's shared serialization point is the MDS the plain
	// transfer already queues on; SharedWaitS must surface its delay.
	env, m := newModel(16)
	lat := sharedBurst(env, m, datastore.FileSystem, 16, 8)
	if len(lat) != 16 {
		t.Fatalf("completed %d ops, want 16", len(lat))
	}
	if m.SharedWaitS(datastore.FileSystem) <= 0 {
		t.Fatal("MDS wait not surfaced for a 16-wide filesystem burst")
	}
}

func TestSharedSlotsFollowServerConfig(t *testing.T) {
	// The service-queue capacity comes from the ServerManager-level
	// deployment shape (datastore.ServerConfig.ServiceSlots), sized by
	// the params' instance counts.
	p := Default()
	p.RedisSharedSlots = 2
	env := des.NewEnv()
	m := New(env, cluster.Aurora(8), p)
	r := m.sharedService(datastore.Redis)
	if r == nil || r.Cap() != 2 {
		t.Fatalf("redis service slots = %v, want capacity 2", r)
	}
	if m.sharedService(datastore.NodeLocal) != nil {
		t.Fatal("node-local must have no shared service queue")
	}
	if m.sharedService(datastore.FileSystem) != nil {
		t.Fatal("filesystem must use the MDS/OST model, not an extra queue")
	}
}

func TestSharedZeroParamsFallBackToDefaults(t *testing.T) {
	// A custom Params that only sets single-tenant constants must keep
	// the calibrated shared-deployment shape, not degrade to 1 slot.
	p := Default()
	p.RedisSharedSlots, p.RedisSharedServiceS, p.RedisSharedBWGBps = 0, 0, 0
	env := des.NewEnv()
	m := New(env, cluster.Aurora(8), p)
	d := Default()
	if r := m.sharedService(datastore.Redis); r == nil || r.Cap() != d.RedisSharedSlots {
		t.Fatalf("redis slots with zero params = %v, want default %d", r, d.RedisSharedSlots)
	}
	if got, want := m.sharedHold(datastore.Redis, 8, 1.0),
		d.RedisSharedServiceS+8.0/1000/d.RedisSharedBWGBps; got != want {
		t.Fatalf("redis hold with zero params = %v, want default-derived %v", got, want)
	}
}
