// Package costmodel provides the analytic + queueing transport models
// that let the discrete-event simulation reproduce the paper's scale
// experiments (Fig 3–6). Each backend gets a model of its per-operation
// cost; shared contention points (Lustre metadata server, trainer NIC)
// are des.Resources so queueing delay emerges from load rather than
// being hard-coded.
//
// Calibration targets are the *shapes* in the paper's figures, not
// absolute Aurora numbers: in-memory stores peak near 8 MB and dip at
// 32 MB (L3 share exceeded); the file system is monotonic in size but
// collapses at 512 nodes (MDS contention); Redis reads poorly over the
// fabric; Dragon's point-to-point peak does not save it from
// many-to-one latency at small messages.
package costmodel

// Params collects every model constant in one place, each tied to the
// paper's stated mechanism. Times in seconds, sizes in MB, bandwidths in
// GB/s unless noted.
type Params struct {
	// --- In-memory store local exchange (Pattern 1 co-located) ---

	// NodeLocalOverheadS is the fixed per-operation cost of the tmpfs
	// store (VFS entry, temp-file create, rename).
	NodeLocalOverheadS float64
	// NodeLocalBWGBps is the peak copy bandwidth through tmpfs (DRAM
	// copy bound).
	NodeLocalBWGBps float64

	// DragonOverheadS / DragonBWGBps: Dragon dictionary local put/get —
	// slightly more overhead than raw tmpfs (manager round trip).
	DragonOverheadS float64
	DragonBWGBps    float64

	// RedisOverheadS / RedisBWGBps: Redis pays RESP serialization and a
	// socket hop even node-locally; lowest peak bandwidth of the three
	// in-memory stores, matching Fig 3.
	RedisOverheadS float64
	RedisBWGBps    float64

	// CacheShareMB is the per-process L3 share (105 MB / 12 procs ≈ 8.75
	// MB in the paper's arithmetic); transfers larger than this spill.
	CacheShareMB float64
	// CacheSpillFactor scales bandwidth per doubling beyond the cache
	// share, producing the 32 MB dip of Fig 3.
	CacheSpillFactor float64

	// NodeBusConcurrency bounds simultaneous full-rate local transfers
	// per node (memory-bandwidth sharing among the 12 ranks).
	NodeBusConcurrency int

	// --- Lustre (file system backend) ---

	// LustreClientRPCS is the client-side fixed cost per metadata
	// operation (RPC round trip + llite overhead).
	LustreClientRPCS float64
	// LustreMDSServiceS is the metadata server's service time per
	// operation; the MDS is a single shared queue, so utilization near 1
	// at 512 nodes produces the order-of-magnitude degradation of
	// Fig 3b/4d.
	LustreMDSServiceS float64
	// LustreMetaOpsPerTransfer: open + close (2) per staged read/write.
	LustreMetaOpsPerTransfer int
	// LustreStreamBWGBps is the per-client OST streaming bandwidth
	// (1 MB stripes, stripe count 1, per the paper's configuration).
	LustreStreamBWGBps float64
	// LustreOSTConcurrency bounds simultaneous full-rate OST streams
	// (aggregate OST bandwidth / per-stream bandwidth).
	LustreOSTConcurrency int

	// --- Remote (non-local) access, Pattern 2 ---

	// RedisRemoteBWGBps: Redis non-local reads are request/response
	// without deep pipelining — poor fabric utilization (Fig 5a).
	RedisRemoteBWGBps float64
	// RedisRemoteLatencyS per remote operation.
	RedisRemoteLatencyS float64
	// RedisRemoteConcurrency: effective parallel fetch streams one
	// client sustains.
	RedisRemoteConcurrency int

	// DragonRemoteBWGBps: Dragon RDMA-like transfer peak.
	DragonRemoteBWGBps float64
	// DragonRemoteLatencyS: point-to-point per-message setup. Low — Fig 5
	// shows Dragon's p2p throughput peaking well above the file system.
	DragonRemoteLatencyS float64
	// DragonIncastLatencyS: additional per-message handling cost when a
	// single client drains many senders (dictionary rendezvous +
	// manager coordination). The paper infers exactly this: "high
	// point-to-point throughput does not always guarantee the best
	// performance in a many-to-one communication pattern, suggesting
	// that latency can become a critical factor" — this constant is
	// that latency (Fig 6b's small-message gap).
	DragonIncastLatencyS float64
	// DragonRemoteConcurrency: parallel fetch streams.
	DragonRemoteConcurrency int
	// DragonWindowMB: throughput declines beyond this message size
	// (protocol window), the ~10 MB peak of Fig 5.
	DragonWindowMB float64
	// DragonWindowFactor scales bandwidth per doubling beyond the window.
	DragonWindowFactor float64

	// FSRemoteConcurrency: parallel file reads the trainer issues
	// against Lustre (client readahead/striping parallelism).
	FSRemoteConcurrency int

	// --- Shared multi-tenant deployment (scale-out scenarios) ---
	//
	// When N concurrent workflows share one backend deployment instead
	// of each getting its own, staged operations additionally queue on
	// the deployment's server-side service slots. These constants size
	// that queue for the two in-memory backends; the file system needs
	// none (its shared MDS/OST queues already are the model), and
	// node-local tmpfs has no shared component at all. Single-tenant
	// scenarios never touch these. Zero values fall back to the
	// calibrated defaults at use time, so a custom Params that only
	// tweaks single-tenant constants keeps the calibrated deployment
	// shape.

	// RedisSharedSlots is the number of shard instances of a shared
	// Redis deployment; each services one request at a time, so this is
	// the service-queue capacity (datastore.ServerConfig.ServiceSlots).
	RedisSharedSlots int
	// RedisSharedServiceS is the fixed server-side cost per staged op
	// (RESP parse + dispatch on the shard's single thread).
	RedisSharedServiceS float64
	// RedisSharedBWGBps is the per-slot service bandwidth for the
	// payload copy through the shard.
	RedisSharedBWGBps float64

	// DragonSharedSlots / DragonSharedServiceS / DragonSharedBWGBps:
	// the same for a shared Dragon dictionary — more manager instances
	// and cheaper per-op handling than Redis, so it saturates later.
	DragonSharedSlots    int
	DragonSharedServiceS float64
	DragonSharedBWGBps   float64

	// --- Collective communication (gradsync scenario family) ---

	// CollAlgo selects the collective algorithm the communication cost
	// layer models (see coll.go): "flat", "ring", "tree" or "hier". The
	// zero value ("") is flat — the legacy single-cost rendezvous — so
	// every pre-existing scenario's output is byte-unchanged unless an
	// algorithm is explicitly requested.
	CollAlgo string
}

// Default returns the calibrated parameter set used by the experiment
// harness. See the package comment for the shape targets.
func Default() Params {
	return Params{
		NodeLocalOverheadS: 0.0005,
		NodeLocalBWGBps:    2.5,
		DragonOverheadS:    0.0007,
		DragonBWGBps:       2.2,
		RedisOverheadS:     0.0011,
		RedisBWGBps:        1.2,
		CacheShareMB:       8.75,
		CacheSpillFactor:   0.35,
		NodeBusConcurrency: 8,

		LustreClientRPCS:         0.002,
		LustreMDSServiceS:        0.0004,
		LustreMetaOpsPerTransfer: 2,
		LustreStreamBWGBps:       1.0,
		LustreOSTConcurrency:     512,

		RedisRemoteBWGBps:      0.25,
		RedisRemoteLatencyS:    0.0015,
		RedisRemoteConcurrency: 1,

		DragonRemoteBWGBps:      2.2,
		DragonRemoteLatencyS:    0.0005,
		DragonIncastLatencyS:    0.010,
		DragonRemoteConcurrency: 8,
		DragonWindowMB:          10,
		DragonWindowFactor:      0.25,

		FSRemoteConcurrency: 16,

		RedisSharedSlots:     4,
		RedisSharedServiceS:  0.001,
		RedisSharedBWGBps:    1.2,
		DragonSharedSlots:    8,
		DragonSharedServiceS: 0.0004,
		DragonSharedBWGBps:   2.2,
	}
}
