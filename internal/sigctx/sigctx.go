// Package sigctx is the one place process-lifecycle signals become
// context cancellation. Both CLIs (cmd/experiments and cmd/simaibench)
// need the same two-stage contract — the first signal cancels the
// context so in-flight work can drain and flush, and default signal
// handling is restored immediately so a second signal kills the process
// outright — and a shared helper keeps the subtle part (re-arming the
// default disposition after the first signal) from being reimplemented
// slightly differently in each command.
package sigctx

import (
	"context"
	"os"
	"os/signal"
)

// WithSignals returns a context cancelled by the first of the given
// signals (os.Interrupt when none are given) and the function that
// releases the signal registration early.
//
// Contract: graceful once, forceful twice. The first signal cancels the
// returned context — the caller's drain path runs — and simultaneously
// restores default signal handling, so a second signal terminates the
// process instead of being swallowed by a wedged drain.
func WithSignals(ctx context.Context, sigs ...os.Signal) (context.Context, context.CancelFunc) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt}
	}
	sctx, stop := signal.NotifyContext(ctx, sigs...)
	go func() {
		<-sctx.Done()
		stop()
	}()
	return sctx, stop
}
