// backend-sweep: measure real (this machine, real bytes) staging
// throughput for every backend across message sizes and print
// Fig-3-style rows. Unlike cmd/experiments -exp fig3, which models an
// Aurora partition, this sweep exercises the actual Go implementations —
// useful for sanity-checking the relative cost of protocol overhead
// (Redis RESP vs Dragon binary framing vs rename-based file staging).
//
// With -model, the registered "fig3" scenario runs afterwards through
// the public registry API (pkg/simaibench), printing the modeled Aurora
// numbers next to the measured ones — the programmatic equivalent of
// `go run ./cmd/experiments -exp fig3`.
//
//	go run ./examples/backend-sweep [-repeats 20] [-model] [-model-iters 100]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"simaibench/pkg/simaibench"
)

func main() {
	repeats := flag.Int("repeats", 20, "transfers per (backend, size) cell")
	model := flag.Bool("model", false, "also run the registered fig3 scenario (simulated Aurora) for comparison")
	modelIters := flag.Int("model-iters", 100, "simulated training iterations per modeled sweep point")
	flag.Parse()

	sizes := []int{400_000, 2_000_000, 8_000_000, 32_000_000} // the paper's 0.4–32 MB
	fmt.Printf("%-12s %10s %14s %14s\n", "backend", "size(MB)", "read(GB/s)", "write(GB/s)")

	for _, backend := range simaibench.Backends() {
		mgr, info, err := simaibench.StartBackend(backend, "")
		if err != nil {
			log.Fatal(err)
		}
		store, err := simaibench.Connect(info)
		if err != nil {
			mgr.Stop()
			log.Fatal(err)
		}
		for _, size := range sizes {
			payload := make([]byte, size)
			var writeS, readS float64
			for r := 0; r < *repeats; r++ {
				key := fmt.Sprintf("sweep/%d/%d", size, r)
				start := time.Now()
				if err := store.StageWrite(key, payload); err != nil {
					log.Fatal(err)
				}
				writeS += time.Since(start).Seconds()
				start = time.Now()
				if _, err := store.StageRead(key); err != nil {
					log.Fatal(err)
				}
				readS += time.Since(start).Seconds()
				if err := store.Clean(key); err != nil {
					log.Fatal(err)
				}
			}
			bytes := float64(size) * float64(*repeats)
			fmt.Printf("%-12s %10.2f %14.3f %14.3f\n",
				backend, float64(size)/1e6, bytes/readS/1e9, bytes/writeS/1e9)
		}
		store.Close()
		mgr.Stop()
	}

	if !*model {
		return
	}
	// The modeled counterpart, through the same registry the CLI uses:
	// enumerate, look up, run, report.
	fmt.Println("\nModeled (simulated Aurora partition), via the scenario registry:")
	res, err := simaibench.RunScenario(context.Background(), "fig3",
		simaibench.ScenarioParams{SweepIters: *modelIters})
	if err != nil {
		log.Fatal(err)
	}
	if err := simaibench.ReportResults(os.Stdout, "text", res); err != nil {
		log.Fatal(err)
	}
}
