// Quickstart: the paper's Listing 1 in Go — two simulation components
// with an explicit dependency exchanging data through a runtime-selected
// staging backend.
//
//	go run ./examples/quickstart [-backend node-local]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"simaibench/pkg/simaibench"
)

func main() {
	backendName := flag.String("backend", "node-local", "redis|dragon|node-local|filesystem")
	flag.Parse()

	backend, err := simaibench.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}

	// ServerManager: deploy the chosen backend (the paper's
	// server.start_server() / get_server_info()).
	mgr, info, err := simaibench.StartBackend(backend, "")
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Stop()
	fmt.Printf("deployed %s backend\n", backend)

	simCfg, err := simaibench.ParseSimulationConfig([]byte(`{
		"kernels": [{
			"name": "iter",
			"mini_app_kernel": "MatMulSimple2D",
			"run_time": 0.005,
			"data_size": [64, 64],
			"device": "xpu"
		}]
	}`))
	if err != nil {
		log.Fatal(err)
	}

	w := simaibench.NewWorkflow("quickstart")

	// First component: run a few iterations, stage a result.
	must(w.Register(simaibench.Component{
		Name:  "sim",
		Type:  simaibench.Remote, // mpirun analogue: 4 ranks
		Ranks: 4,
		Body: func(ctx simaibench.Ctx) error {
			store, err := simaibench.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			sim, err := simaibench.NewSimulation("sim", simCfg,
				simaibench.SimWithStore(store), simaibench.SimWithComm(ctx.Comm))
			if err != nil {
				return err
			}
			if err := sim.Run(10); err != nil {
				return err
			}
			// Rank 0 publishes; ranks coordinate via the communicator.
			if ctx.Comm.Rank() == 0 {
				if err := sim.StageWrite("key1", []byte("value1")); err != nil {
					return err
				}
				fmt.Println("sim: staged key1")
			}
			ctx.Comm.Barrier()
			return nil
		},
	}))

	// Second component: depends on the first, reads its output.
	must(w.Register(simaibench.Component{
		Name: "sim2",
		Deps: []string{"sim"},
		Body: func(ctx simaibench.Ctx) error {
			store, err := simaibench.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			sim, err := simaibench.NewSimulation("sim2", simCfg,
				simaibench.SimWithStore(store))
			if err != nil {
				return err
			}
			v, err := sim.StageRead("key1")
			if err != nil {
				return err
			}
			fmt.Printf("sim2: read key1 = %q\n", v)
			if err := sim.StageWrite("key2", []byte("value2")); err != nil {
				return err
			}
			if err := sim.Run(5); err != nil {
				return err
			}
			r := sim.Report()
			fmt.Printf("sim2: %d iterations, mean %.4f s\n", r.Iterations, r.IterMean)
			return nil
		},
	}))

	if err := w.Launch(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("workflow complete")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
