// multi-tenant: the scale-out scenario exercised programmatically — N
// co-scheduled workflow instances staging through ONE shared backend
// deployment, where contention inverts the paper's single-tenant
// transport rankings. Two views of the same machinery:
//
// With no flags, single points through simaibench.RunScaleOut: one
// backend at increasing tenant counts, printing the slowdown and
// aggregate-throughput collapse as the shared deployment saturates.
//
// With -scenario, the registered "scale-out" scenario runs through the
// public registry API (the programmatic equivalent of
// `go run ./cmd/experiments -exp scale-out`), rendering every backend's
// collapse-curve table.
//
//	go run ./examples/multi-tenant [-backend redis] [-size-mb 8] [-iters 300]
//	go run ./examples/multi-tenant -scenario [-tenants 8] [-format text]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"simaibench/pkg/simaibench"
)

func main() {
	backendName := flag.String("backend", "redis", "backend for the point-by-point sweep")
	sizeMB := flag.Float64("size-mb", 8, "snapshot size in MB")
	iters := flag.Int("iters", 300, "simulated training iterations per point")
	scenario := flag.Bool("scenario", false, "run the registered scale-out scenario for all backends instead")
	tenants := flag.Int("tenants", 8, "max tenants for -scenario (sweep doubles 1,2,4,...)")
	format := flag.String("format", "text", "reporter for -scenario: text|json|csv")
	flag.Parse()

	if *scenario {
		res, err := simaibench.RunScenario(context.Background(), "scale-out",
			simaibench.ScenarioParams{SweepIters: *iters, Tenants: *tenants})
		if err != nil {
			log.Fatal(err)
		}
		if err := simaibench.ReportResults(os.Stdout, *format, res); err != nil {
			log.Fatal(err)
		}
		return
	}

	backend, err := simaibench.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	shared := "per-node (nothing shared: expect flat latency, linear aggregate)"
	if simaibench.SharedDeployment(backend) {
		shared = "shared deployment (tenants queue on its service slots)"
	}
	fmt.Printf("backend %s — %s\n", backend, shared)

	// The harness gives every tenant a dedicated block (oversubscription
	// 1.0); show what packing the largest sweep point onto a fixed
	// 8-node pool would look like instead.
	pool := simaibench.Aurora(8)
	packed, err := simaibench.CoSchedule(pool, 16, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement: dedicated blocks (16 tenants × 2 nodes packed on 8 nodes would be %.1fx oversubscribed)\n\n",
		simaibench.Oversubscription(pool, packed))
	fmt.Printf("%8s %13s %13s %11s %9s\n",
		"tenants", "stage-mean(s)", "p50-stage(s)", "agg(GB/s)", "slowdown")

	var base float64
	for _, n := range []int{1, 2, 4, 8, 16} {
		pt := simaibench.RunScaleOut(simaibench.ScaleOutConfig{
			Tenants: n, Backend: backend, SizeMB: *sizeMB, TrainIters: *iters,
		})
		if n == 1 {
			base = pt.StageMeanS
		}
		slowdown := 0.0
		if base > 0 {
			slowdown = pt.StageMeanS / base
		}
		fmt.Printf("%8d %13.5f %13.5f %11.3f %9.2f\n",
			n, pt.StageMeanS, pt.StageP50S, pt.AggGBps, slowdown)
	}
}
