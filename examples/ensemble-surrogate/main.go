// ensemble-surrogate: the paper's Pattern 2 mini-app — one surrogate
// model trained online from an ensemble of concurrent simulations. Each
// ensemble member stages an array every write period; the trainer blocks
// every read period until the data from *all* members has arrived (the
// consistent-workload rule of §4.2) before folding it into its loader.
//
//	go run ./examples/ensemble-surrogate -members 8 -backend dragon \
//	    -payload-mb 1 -train-iters 200 -time-scale 0.01
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"simaibench/pkg/simaibench"
)

func main() {
	members := flag.Int("members", 8, "ensemble size (simulation components)")
	backendName := flag.String("backend", "dragon", "staging backend (node-local is not valid for non-local reads)")
	payloadMB := flag.Float64("payload-mb", 1.0, "array size per member in MB")
	trainIters := flag.Int("train-iters", 200, "training iterations")
	writePeriod := flag.Int("write-period", 10, "solver iterations between writes")
	readPeriod := flag.Int("read-period", 10, "trainer iterations between ensemble reads")
	timeScale := flag.Float64("time-scale", 0.01, "wall-clock compression")
	flag.Parse()

	backend, err := simaibench.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	if backend == simaibench.NodeLocal {
		log.Fatal("node-local staging cannot be read across nodes; use redis, dragon or filesystem (see §4.2 of the paper)")
	}
	mgr, info, err := simaibench.StartBackend(backend, "")
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Stop()

	simCfg, err := simaibench.ParseSimulationConfig([]byte(`{
		"kernels": [{
			"name": "sim_iter",
			"mini_app_kernel": "AXPY",
			"run_time": 0.0325,
			"data_size": [512],
			"device": "xpu"
		}]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	aiCfg := simaibench.AIConfig{Layers: []int{16, 64, 16}, LR: 0.01, Batch: 32}
	rt := simaibench.DistSpec{Type: "fixed", Value: 0.0633}
	aiCfg.RunTime = &rt

	rng := rand.New(rand.NewSource(1))
	field := make([]float64, int(*payloadMB*1e6)/8)
	for i := range field {
		field[i] = rng.NormFloat64()
	}
	payload := simaibench.EncodeFloat64s(field)

	w := simaibench.NewWorkflow("ensemble-surrogate")
	start := time.Now()

	// Ensemble members: independent simulation components.
	for m := 0; m < *members; m++ {
		m := m
		err := w.Register(simaibench.Component{
			Name: fmt.Sprintf("sim%d", m),
			Body: func(ctx simaibench.Ctx) error {
				store, err := simaibench.Connect(info)
				if err != nil {
					return err
				}
				defer store.Close()
				sim, err := simaibench.NewSimulation(fmt.Sprintf("sim%d", m), simCfg,
					simaibench.SimWithStore(store),
					simaibench.SimWithSeed(int64(m+1)),
					simaibench.SimWithTimeScale(*timeScale))
				if err != nil {
					return err
				}
				for step := 1; ; step++ {
					if err := sim.RunIteration(); err != nil {
						return err
					}
					if step%*writePeriod == 0 {
						key := fmt.Sprintf("member%d/step%d", m, step)
						if err := sim.StageWrite(key, payload); err != nil {
							return err
						}
						if err := store.StageWrite(fmt.Sprintf("member%d/head", m),
							[]byte(fmt.Sprint(step))); err != nil {
							return err
						}
					}
					if step%10 == 0 {
						if stop, _ := store.Poll("stop"); stop {
							return nil
						}
					}
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Trainer: blocking ensemble read every read period.
	err = w.Register(simaibench.Component{
		Name: "trainer",
		Body: func(ctx simaibench.Ctx) error {
			store, err := simaibench.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			tr, err := simaibench.NewAI("trainer", aiCfg,
				simaibench.AIWithStore(store),
				simaibench.AIWithTimeScale(*timeScale))
			if err != nil {
				return err
			}
			lastHead := make([]string, *members)
			var fetchTotal time.Duration
			fetches := 0
			for i := 1; i <= *trainIters; i++ {
				if _, err := tr.TrainIteration(); err != nil {
					return err
				}
				if i%*readPeriod != 0 {
					continue
				}
				// Block until every member has fresh data, then read all
				// of it — the consistent-workload rule of the paper.
				fetchStart := time.Now()
				for m := 0; m < *members; m++ {
					headKey := fmt.Sprintf("member%d/head", m)
					var head []byte
					for {
						head, err = store.StageRead(headKey)
						if err == nil && string(head) != lastHead[m] {
							break
						}
						time.Sleep(time.Duration(*timeScale * float64(time.Millisecond) * 100))
					}
					lastHead[m] = string(head)
					if err := tr.UpdateLoader(fmt.Sprintf("member%d/step%s", m, head)); err != nil {
						return err
					}
				}
				fetchTotal += time.Since(fetchStart)
				fetches++
			}
			if err := store.StageWrite("stop", []byte("1")); err != nil {
				return err
			}
			r := tr.Report()
			fmt.Printf("trainer: %d iterations, %d ensemble reads of %d members each\n",
				r.Iterations, fetches, *members)
			fmt.Printf("         exec/iter %.4f s, mean ensemble fetch %.4f s, read %.3f GB/s, loss %.4g\n",
				time.Since(start).Seconds()/(*timeScale)/float64(*trainIters),
				fetchTotal.Seconds()/(*timeScale)/float64(max(fetches, 1)),
				r.ReadGBps, r.LastLoss)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := w.Launch(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan: %.1f emulated s (%.2f s wall, backend %s, %d members)\n",
		time.Since(start).Seconds()/(*timeScale), time.Since(start).Seconds(), backend, *members)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
