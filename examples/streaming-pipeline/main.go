// streaming-pipeline: in-transit coupling over point-to-point streaming
// instead of polled staging — the transport the paper lists as future
// work ("point-to-point streaming, for instance using ADIOS2"). A solver
// emulation publishes flow-field steps; the trainer consumes them with
// push semantics (no polling) and folds each step into its loader.
//
//	go run ./examples/streaming-pipeline -steps 20 -payload-mb 2 -tcp
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"simaibench/internal/stream"
	"simaibench/pkg/simaibench"
)

func main() {
	steps := flag.Int("steps", 20, "snapshots to stream")
	payloadMB := flag.Float64("payload-mb", 2.0, "snapshot size in MB")
	useTCP := flag.Bool("tcp", false, "stream over TCP instead of in-process")
	queue := flag.Int("queue", 4, "stream queue capacity (backpressure bound)")
	flag.Parse()

	var w stream.Writer
	var r stream.Reader
	if *useTCP {
		tw, err := stream.ListenTCP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		tr, err := stream.DialTCP(tw.Addr())
		if err != nil {
			log.Fatal(err)
		}
		w, r = tw, tr
		fmt.Printf("streaming over TCP at %s\n", tw.Addr())
	} else {
		w, r = stream.Pipe(*queue)
		fmt.Printf("streaming in-process (queue capacity %d)\n", *queue)
	}

	rng := rand.New(rand.NewSource(1))
	field := make([]float64, int(*payloadMB*1e6)/8)
	for i := range field {
		field[i] = rng.NormFloat64()
	}
	payload := simaibench.EncodeFloat64s(field)

	trainer, err := simaibench.NewAI("trainer",
		simaibench.AIConfig{Layers: []int{16, 64, 16}, LR: 0.01, Batch: 32})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // solver: publish one step per emulated iteration period
		defer wg.Done()
		defer w.Close()
		for i := 0; i < *steps; i++ {
			step, err := w.BeginStep()
			if err != nil {
				log.Fatal(err)
			}
			if err := step.Put("velocity", payload); err != nil {
				log.Fatal(err)
			}
			if err := step.EndStep(); err != nil {
				log.Fatal(err)
			}
		}
	}()

	start := time.Now()
	received := 0
	var bytes int64
	for {
		s, err := r.NextStep()
		if errors.Is(err, stream.ErrDone) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		received++
		bytes += int64(s.Bytes())
		// Fold the streamed step into training data and take a step.
		if v, ok := s.Get("velocity"); ok {
			xs := simaibench.DecodeFloat64s(v)
			_ = xs // loader ingestion happens through staging in the KV
			// examples; here we train directly on the freshest step.
		}
		if _, err := trainer.TrainIteration(); err != nil {
			log.Fatal(err)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	rep := trainer.Report()
	fmt.Printf("received %d steps (%.1f MB) in %.3f s — %.2f GB/s sustained\n",
		received, float64(bytes)/1e6, elapsed, float64(bytes)/elapsed/1e9)
	fmt.Printf("trainer: %d iterations, final loss %.4g\n", rep.Iterations, rep.LastLoss)
}
