// nekrs-ml: the paper's Pattern 1 mini-app — a co-located CFD solver
// emulation (nekRS stand-in) training a surrogate model online. The two
// components run concurrently and fully asynchronously: the simulation
// stages flow-field snapshots at a fixed period, the trainer polls for
// fresh data and folds it into its data loader, and after its final
// iteration it steers the simulation to stop.
//
//	go run ./examples/nekrs-ml -backend node-local -payload-mb 1.2 \
//	    -train-iters 500 -time-scale 0.01
//
// By default the workflow pads on a deterministic virtual clock and
// completes as fast as its real compute allows; -clock wall restores
// the genuine real-time emulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"simaibench/pkg/simaibench"
)

func main() {
	backendName := flag.String("backend", "node-local", "staging backend")
	payloadMB := flag.Float64("payload-mb", 1.2, "snapshot size in MB (the original writes 1.2 MB per rank)")
	trainIters := flag.Int("train-iters", 500, "GNN training iterations (paper: 5000)")
	writePeriod := flag.Int("write-period", 100, "solver iterations between snapshots")
	readPeriod := flag.Int("read-period", 10, "trainer iterations between polls")
	timeScale := flag.Float64("time-scale", 0.01, "wall-clock compression")
	clockKind := flag.String("clock", "virtual", "emulation clock: virtual (deterministic, DES speed) or wall (real time)")
	timelineCSV := flag.String("timeline-csv", "", "optional path for a Fig-2-style timeline CSV")
	flag.Parse()

	backend, err := simaibench.ParseBackend(*backendName)
	if err != nil {
		log.Fatal(err)
	}
	mgr, info, err := simaibench.StartBackend(backend, "")
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Stop()

	// The Listing 2 configuration: nekRS iteration emulated at 0.03147 s
	// (kernel swapped for a light one so the scaled timing stays exact).
	simCfg, err := simaibench.ParseSimulationConfig([]byte(`{
		"kernels": [{
			"name": "nekrs_iter",
			"mini_app_kernel": "AXPY",
			"run_time": 0.03147,
			"data_size": [512],
			"device": "xpu"
		}]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	aiCfg := simaibench.AIConfig{Layers: []int{16, 64, 16}, LR: 0.01, Batch: 16}
	rt := simaibench.DistSpec{Type: "fixed", Value: 0.061}
	aiCfg.RunTime = &rt

	// Snapshot payload: a real float array, like a velocity field.
	rng := rand.New(rand.NewSource(1))
	field := make([]float64, int(*payloadMB*1e6)/8)
	for i := range field {
		field[i] = rng.NormFloat64()
	}
	payload := simaibench.EncodeFloat64s(field)

	clk, err := simaibench.ClockFromKind(*clockKind)
	if err != nil {
		log.Fatal(err)
	}
	w := simaibench.NewWorkflow("nekrs-ml", simaibench.WorkflowWithClock(clk))
	tl := simaibench.NewTimeline()
	start := clk.Now()
	wallStart := time.Now()

	must(w.Register(simaibench.Component{
		Name: "nekrs",
		Body: func(ctx simaibench.Ctx) error {
			store, err := simaibench.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			sim, err := simaibench.NewSimulation("nekrs", simCfg,
				simaibench.SimWithStore(store),
				simaibench.SimWithTimeline(tl, "Simulation"),
				simaibench.SimWithTimeScale(*timeScale),
				simaibench.SimWithClock(clk))
			if err != nil {
				return err
			}
			for step := 1; ; step++ {
				if err := sim.RunIteration(); err != nil {
					return err
				}
				if step%*writePeriod == 0 {
					if err := sim.StageWrite(fmt.Sprintf("field/%d", step), payload); err != nil {
						return err
					}
					if err := store.StageWrite("head", []byte(fmt.Sprint(step))); err != nil {
						return err
					}
				}
				if step%10 == 0 {
					if stop, _ := store.Poll("stop"); stop {
						r := sim.Report()
						fmt.Printf("nekrs: stopped after %d steps (iter %.4f ± %.4f s, %d snapshot writes, %.3f GB/s)\n",
							r.Iterations, r.IterMean, r.IterStd, r.Writes, r.WriteGBps)
						return nil
					}
				}
			}
		},
	}))

	must(w.Register(simaibench.Component{
		Name: "gnn-trainer",
		Body: func(ctx simaibench.Ctx) error {
			store, err := simaibench.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			tr, err := simaibench.NewAI("gnn", aiCfg,
				simaibench.AIWithStore(store),
				simaibench.AIWithTimeline(tl, "Training"),
				simaibench.AIWithTimeScale(*timeScale),
				simaibench.AIWithClock(clk))
			if err != nil {
				return err
			}
			lastHead := ""
			for i := 1; i <= *trainIters; i++ {
				if _, err := tr.TrainIteration(); err != nil {
					return err
				}
				if i%*readPeriod != 0 {
					continue
				}
				head, err := store.StageRead("head")
				if err != nil {
					continue // no snapshot yet
				}
				if string(head) == lastHead {
					continue
				}
				lastHead = string(head)
				if err := tr.UpdateLoader("field/" + lastHead); err != nil {
					return err
				}
			}
			// Steer the workflow: stop the solver.
			if err := store.StageWrite("stop", []byte("1")); err != nil {
				return err
			}
			r := tr.Report()
			fmt.Printf("gnn:   %d iterations (iter %.4f ± %.4f s, %d snapshot reads, %.3f GB/s, loss %.4g)\n",
				r.Iterations, r.IterMean, r.IterStd, r.Reads, r.ReadGBps, r.LastLoss)
			return nil
		},
	}))

	if err := w.Launch(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("makespan: %.1f emulated s (%.2f s wall, backend %s, clock %s)\n",
		clk.Now().Sub(start).Seconds()/(*timeScale), time.Since(wallStart).Seconds(), backend, *clockKind)
	if *timelineCSV != "" {
		f, err := os.Create(*timelineCSV)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tl.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s\n", *timelineCSV)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
