module simaibench

go 1.24
