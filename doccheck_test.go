package bench

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// The missing-doc gate CI's "Missing-doc check" step runs
// (go test -run TestExportedSymbolsDocumented .): the packages that form
// the public face of the repo — the scenario framework, the sweep
// runner, the cluster model and the entire pkg/simaibench API — must
// carry a package-level doc comment and a doc comment on every exported
// symbol. New exports without docs fail here rather than accumulating
// documentation debt.

// docCheckedPackages are the directories the check covers.
var docCheckedPackages = []string{
	"internal/scenario",
	"internal/sweep",
	"internal/cluster",
	"internal/mpi",
	"internal/loadgen",
	"internal/schedule",
	"internal/serve",
	"internal/sigctx",
	"pkg/simaibench",
}

func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range docCheckedPackages {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				hasPkgDoc := false
				for _, f := range pkg.Files {
					if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
						hasPkgDoc = true
					}
				}
				if !hasPkgDoc {
					t.Errorf("%s: package %s has no package-level doc comment", dir, pkg.Name)
				}
				for name, f := range pkg.Files {
					for _, miss := range undocumentedExports(f) {
						pos := fset.Position(miss.pos)
						t.Errorf("%s:%d: exported %s %s has no doc comment", name, pos.Line, miss.kind, miss.name)
					}
				}
			}
		})
	}
}

type missingDoc struct {
	kind string
	name string
	pos  token.Pos
}

// undocumentedExports returns every exported top-level symbol of f that
// lacks a doc comment. Grouped var/const declarations are satisfied by
// a comment on the group (the standard godoc convention); individual
// specs inside a documented group need none.
func undocumentedExports(f *ast.File) []missingDoc {
	var out []missingDoc
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				out = append(out, missingDoc{kind, d.Name.Name, d.Pos()})
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				continue // group comment documents every spec
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						out = append(out, missingDoc{"type", s.Name.Name, s.Pos()})
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							out = append(out, missingDoc{fmt.Sprint(d.Tok), n.Name, n.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

// exportedReceiver reports whether d is a plain function or a method on
// an exported type (methods on unexported types are not API surface).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // be conservative: unknown shapes stay checked
		}
	}
}
