package bench

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"simaibench/internal/scenario"
	"simaibench/internal/serve"
)

// The serving layer's self-benchmark (PR 9, recorded in BENCH_DES.json
// under "serve"): the server eats its own load generator. Each benchmark
// replays a seeded open-loop request mix (internal/loadgen arrivals
// through the typed client) against a live server and reports the
// service-level observables — QPS, p50/p99 latency, cache hit rate, and
// the shed rate under 1.2x overload. The zero-lost-completed-results
// shutdown contract is pinned by TestGracefulShutdownServesInFlight and
// the cmd-level SIGTERM test rather than measured here.

// newServeBench starts a server on an httptest listener and returns the
// typed client plus a cleanup.
func newServeBench(b *testing.B, cfg serve.Config) (*serve.Client, func()) {
	b.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	return &serve.Client{BaseURL: ts.URL}, func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}
}

// reportLoad publishes a LoadReport's headline numbers as benchmark
// metrics.
func reportLoad(b *testing.B, r *serve.LoadReport) {
	b.ReportMetric(r.QPS, "qps")
	b.ReportMetric(r.P50Ms, "p50-ms")
	b.ReportMetric(r.P99Ms, "p99-ms")
	if r.Sent > 0 {
		b.ReportMetric(float64(r.CacheHits)/float64(r.Sent), "hit-rate")
		b.ReportMetric(r.ShedRate(), "shed-rate")
	}
}

// BenchmarkServeHot replays a cache-hot mix: every request addresses the
// same (scenario, params, seed) cell, so after the first miss the server
// answers from the content-addressed cache. The p50 here is the serving
// floor — decode, key, one map lookup, write.
func BenchmarkServeHot(b *testing.B) {
	c, cleanup := newServeBench(b, serve.Config{Workers: 2})
	defer cleanup()
	req := serve.RunRequest{Scenario: "fig5", Params: scenario.Params{SweepIters: 40}, Seed: 1}
	if _, _, err := c.Run(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := serve.RunLoad(context.Background(), c, serve.LoadConfig{
			Seed: int64(i + 1), Requests: 200, RatePerS: 1000,
			Mix:     []serve.LoadMix{{Name: "hot", Weight: 1, Request: req}},
			Timeout: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if report.OK != report.Sent {
			b.Fatalf("hot replay lost requests: %+v", report)
		}
		reportLoad(b, report)
	}
}

// BenchmarkServeCold replays a cache-cold mix: every request is a
// distinct cell (the seed varies per arrival), so each one is admitted
// and simulated. This is the serving path's full cost — admission,
// hardened run, encode, cache insert.
func BenchmarkServeCold(b *testing.B) {
	c, cleanup := newServeBench(b, serve.Config{Workers: 2})
	defer cleanup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := serve.RunLoad(context.Background(), c, serve.LoadConfig{
			Seed: int64(i + 1), Requests: 100, RatePerS: 400,
			Mix: []serve.LoadMix{{Name: "cold", Weight: 1, VarySeed: true,
				Request: serve.RunRequest{Scenario: "fig5",
					Params: scenario.Params{SweepIters: 40},
					Seed:   int64(10_000 + i*1_000_000)}}},
			Timeout: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if report.OK != report.Sent {
			b.Fatalf("cold replay lost requests: %+v", report)
		}
		reportLoad(b, report)
	}
}

// BenchmarkServeOverload offers 1.2x the measured single-worker capacity
// of a heavier scenario (table2, ~tens of ms per run) at queue depth 2:
// graceful degradation means the excess sheds with typed 429s while
// admitted requests still complete. shed-rate is the headline metric.
func BenchmarkServeOverload(b *testing.B) {
	c, cleanup := newServeBench(b, serve.Config{Workers: 1, QueueDepth: 2})
	defer cleanup()
	req := serve.RunRequest{Scenario: "table2", Params: scenario.Params{TrainIters: 100}, Seed: 1}

	// Calibrate capacity: one cold run's wall time on the only worker.
	t0 := time.Now()
	if _, _, err := c.Run(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	serviceS := time.Since(t0).Seconds()
	rate := 1.2 / serviceS

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(serviceS*1000, "service-ms")
		report, err := serve.RunLoad(context.Background(), c, serve.LoadConfig{
			Seed: int64(i + 1), Requests: 30, RatePerS: rate,
			Mix: []serve.LoadMix{{Name: "overload", Weight: 1, VarySeed: true,
				Request: serve.RunRequest{Scenario: "table2",
					Params: scenario.Params{TrainIters: 100},
					Seed:   int64(20_000 + i*1_000_000)}}},
			Timeout: 120 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if report.Failed > 0 {
			b.Fatalf("overload produced non-shed failures: %+v", report)
		}
		reportLoad(b, report)
	}
}
