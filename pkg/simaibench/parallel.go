package simaibench

import (
	"simaibench/internal/costmodel"
	"simaibench/internal/des"
)

// Parallel DES engine: the public surface of the conservative multi-LP
// core (internal/des.LPSet). The simulated-scale harnesses partition a
// run into logical processes and advance them concurrently under a
// lookahead bound; the knob is the Workers field carried by
// ScenarioParams, Pattern1Config and ScaleOutConfig (0 or 1 = the
// sequential engine, >1 = that many cores). Metrics are bit-identical
// at every setting — Workers only trades wall-clock — and backends
// whose cross-LP lookahead is zero (see LPLookaheadS) transparently
// keep the sequential engine.

// LPLookaheadS reports the minimum modeled cross-LP latency of backend
// b under node-block partitioning: +Inf when b touches only
// node-private resources (the run parallelizes), 0 when it serializes
// through a shared queue (the run stays on the sequential engine).
// shared selects the multi-tenant deployment mode of the scale-out
// family.
func LPLookaheadS(b Backend, shared bool) float64 {
	return costmodel.LPLookaheadS(b, shared)
}

// SharedSimGuard is one event budget enforced jointly across the
// logical processes of a parallel run — the global form of
// SimGuard.MaxEvents, so a budget means the same count whether a cell
// runs on one core or many. Parallel cells arm it automatically from
// ScenarioParams.MaxEvents; it is exported for custom des.LPSet
// harnesses.
type SharedSimGuard = des.SharedGuard

// NewSharedSimGuard returns a joint event budget of maxEvents (> 0)
// for a parallel run's logical processes.
func NewSharedSimGuard(maxEvents int64) *SharedSimGuard {
	return des.NewSharedGuard(maxEvents)
}
