package simaibench

import (
	"context"
	"io"

	"simaibench/internal/experiments" // registers the paper's scenarios
	"simaibench/internal/scenario"
)

// The scenario registry: every experiment of the paper's evaluation
// (and this reproduction's extensions) is an enumerable, programmable
// Scenario. Library users run the same code path as
// `cmd/experiments`:
//
//	for _, s := range simaibench.Scenarios() {
//		fmt.Println(s.Name(), "—", s.Description())
//	}
//	s, _ := simaibench.LookupScenario("fig3")
//	res, _ := s.Run(ctx, simaibench.ScenarioParams{SweepIters: 100})
//	_ = simaibench.ReportResults(os.Stdout, "json", res)

// Scenario is one registered experiment: named, self-describing, with
// paper-default parameters and a context-cancellable Run.
type Scenario = scenario.Scenario

// ScenarioParams are the shared runtime knobs; zero fields fall back to
// each scenario's paper defaults.
type ScenarioParams = scenario.Params

// ScenarioResult is the structured outcome of a run: tables of
// named-column records, renderable as text, JSON or CSV.
type ScenarioResult = scenario.Result

// NewScenario builds a Scenario from a name, description, defaults and
// run function; register it with RegisterScenario to make it visible to
// Scenarios, ResolveScenarios and the experiments CLI.
func NewScenario(name, desc string, defaults ScenarioParams, run scenario.RunFunc) Scenario {
	return scenario.New(name, desc, defaults, run)
}

// RegisterScenario adds a scenario to the global registry (duplicate
// names panic).
func RegisterScenario(s Scenario) { scenario.Register(s) }

// Scenarios returns every registered scenario in registration order.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioNames returns the registered ids in registration order.
func ScenarioNames() []string { return scenario.Names() }

// LookupScenario returns the scenario registered under name.
func LookupScenario(name string) (Scenario, bool) { return scenario.Lookup(name) }

// ResolveScenarios expands an experiment id — a scenario name or a
// group like "all" — into the scenarios it names, or an error listing
// the valid ids.
func ResolveScenarios(id string) ([]Scenario, error) { return scenario.Resolve(id) }

// RunScenario resolves and runs a single scenario by name with the
// given params.
func RunScenario(ctx context.Context, name string, p ScenarioParams) (*ScenarioResult, error) {
	ss, err := scenario.Resolve(name)
	if err != nil {
		return nil, err
	}
	if len(ss) != 1 {
		return nil, errGroupNotScenario(name)
	}
	return ss[0].Run(ctx, p)
}

// WithValidationCache returns a context under which the real-mode
// validation scenarios (table2, table3, fig2) share one measurement per
// configuration — what `cmd/experiments -exp all` uses so validation
// runs once, not three times. Without it every Run re-measures, so
// repeated calls see real run-to-run variance.
func WithValidationCache(ctx context.Context) context.Context {
	return experiments.WithValidationCache(ctx)
}

// ReportResults renders results in the given format ("text", "json" or
// "csv") — the same reporters behind the CLI's -format flag.
func ReportResults(w io.Writer, format string, results ...*ScenarioResult) error {
	r, err := scenario.NewReporter(format)
	if err != nil {
		return err
	}
	return r.Report(w, results)
}

type errGroupNotScenario string

func (e errGroupNotScenario) Error() string {
	return "simaibench: " + string(e) + " is a scenario group; use ResolveScenarios to run its members"
}
