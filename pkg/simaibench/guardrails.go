package simaibench

import (
	"context"

	"simaibench/internal/clock"
	"simaibench/internal/des"
	"simaibench/internal/scenario"
	"simaibench/internal/sweep"
)

// Run guardrails: the public surface of the robustness layer. Sweep
// campaigns run on a hardened runner with panic isolation, per-cell
// deadlines and bounded retry (SweepOptions / RunCells / SweepReport);
// simulated cells carry a DES event budget (SimGuard / BudgetExceeded,
// set per scenario through ScenarioParams.MaxEvents); and the virtual
// emulation clock diagnoses barrier stalls through a watchdog
// (VirtualClock.Watchdog / StallError) instead of deadlocking. Failed
// cells surface as ScenarioResult.Failures and render explicitly in
// every report format. With no guardrail knobs set, every path is
// byte-identical to the unguarded one.

// SweepOptions are the guardrail knobs of a hardened sweep: per-attempt
// wall-clock deadline, bounded retry for Retryable errors, and the
// seeded backoff schedule. The zero value runs cells inline with panic
// isolation only.
type SweepOptions = sweep.Options

// SweepReport is the structured outcome of a hardened sweep: per-cell
// values, per-cell completion status, and structured failures — the
// partial-result view that never passes a zero value off as data.
type SweepReport[T any] = sweep.Report[T]

// CellStatus classifies one cell of a SweepReport: completed, failed, or
// never started (skipped on cancellation).
type CellStatus = sweep.Status

// The per-cell completion states of a hardened sweep.
const (
	// CellSkipped: the cell never started before the sweep was cancelled.
	CellSkipped = sweep.StatusSkipped
	// CellOK: the cell completed and its value slot is valid.
	CellOK = sweep.StatusOK
	// CellFailed: the cell panicked, timed out, or errored out.
	CellFailed = sweep.StatusFailed
)

// CellError is the structured failure of one sweep cell: its index,
// attempt count, final error, and the stack for panics.
type CellError = sweep.CellError

// PanicError wraps a panic recovered from a sweep cell.
type PanicError = sweep.PanicError

// ErrCellTimeout marks a sweep cell abandoned at its per-attempt
// deadline.
var ErrCellTimeout = sweep.ErrCellTimeout

// Retryable marks an error as transient, making the hardened sweep
// runner re-attempt the cell under SweepOptions.Retries.
func Retryable(err error) error { return sweep.Retryable(err) }

// IsRetryable reports whether err (or anything it wraps) was marked with
// Retryable.
func IsRetryable(err error) bool { return sweep.IsRetryable(err) }

// RunCells evaluates f(ctx, 0..n-1) on the bounded worker pool with the
// full guardrail stack, returning every completed cell plus structured
// failures instead of being all-or-nothing.
func RunCells[T any](ctx context.Context, n int, opts SweepOptions,
	f func(ctx context.Context, i int) (T, error)) *SweepReport[T] {
	return sweep.Run(ctx, n, opts, f)
}

// RunCellGrid is RunCells over the row-major cartesian product xs × ys.
func RunCellGrid[X, Y, T any](ctx context.Context, xs []X, ys []Y, opts SweepOptions,
	f func(ctx context.Context, x X, y Y) (T, error)) *SweepReport[T] {
	return sweep.RunGrid(ctx, xs, ys, opts, f)
}

// SimGuard bounds a discrete-event simulation: an executed-event budget
// and a virtual-time horizon that convert a runaway run into a
// structured BudgetExceeded error. Scenarios apply it per sweep cell
// from ScenarioParams.MaxEvents.
type SimGuard = des.Guard

// BudgetExceeded is the structured error of a simulation that tripped
// its SimGuard: which limit tripped and how far the run got.
type BudgetExceeded = des.BudgetExceeded

// StallError is a virtual-clock watchdog's diagnosis of a stalled time
// barrier: participant and sleeper counts, the frozen virtual time, and
// how long the clock has been idle. It wraps ErrStalled.
type StallError = clock.StallError

// ErrStalled marks a virtual-clock stall diagnosed by
// VirtualClock.Watchdog; match with errors.Is.
var ErrStalled = clock.ErrStalled

// CellFailure records one failed sweep cell of a scenario run, as
// carried by ScenarioResult.Failures and rendered by every reporter.
type CellFailure = scenario.CellFailure
