package simaibench

import (
	"context"
	"testing"
)

func TestPublicResiliencePoint(t *testing.T) {
	healthy := RunResilience(ResilienceConfig{Backend: Redis, TrainIters: 120})
	faulty := RunResilience(ResilienceConfig{Backend: Redis, TrainIters: 120, MTBFS: 5, CkptIntervalS: 2})
	if healthy.Writes == 0 || healthy.Crashes != 0 || healthy.WastedS != 0 {
		t.Fatalf("healthy point implausible: %+v", healthy)
	}
	if faulty.Crashes == 0 || faulty.WastedS <= 0 || faulty.CkptWrites == 0 {
		t.Fatalf("faulty point saw no disturbance: %+v", faulty)
	}
	if faulty.EffGBps > faulty.AggGBps {
		t.Fatalf("effective throughput above aggregate: %+v", faulty)
	}
}

func TestPublicResilienceScenario(t *testing.T) {
	res, err := RunScenario(context.Background(), "resilience",
		ScenarioParams{SweepIters: 60, Tenants: 2, MTBF: 20, CkptInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One disturbance table per backend plus the optimal-interval
	// summary.
	if len(res.Tables) != len(Backends())+1 {
		t.Fatalf("tables = %d, want %d", len(res.Tables), len(Backends())+1)
	}
}

func TestPublicFaultPolicyAndNodeSet(t *testing.T) {
	if p, err := ParseFaultPolicy("checkpoint-restart"); err != nil || p != CheckpointRestart {
		t.Fatalf("ParseFaultPolicy = %v, %v", p, err)
	}
	var rec FaultRecovery = ResilienceConfig{CkptIntervalS: 4}.Recovery()
	if rec.Policy != CheckpointRestart || rec.CkptIntervalS != 4 {
		t.Fatalf("Recovery() = %+v", rec)
	}
	if (ResilienceConfig{}).Recovery().Policy != FailStop {
		t.Fatal("zero config should derive fail-stop")
	}
	ns := NewNodeSet(Aurora(4))
	ns.Fail(1)
	if repl, ok := ns.Replacement(1); !ok || repl != 2 {
		t.Fatalf("Replacement = %d, %v", repl, ok)
	}
	if (FaultProfile{MTBFS: 100}).CrashesEnabled() != true {
		t.Fatal("FaultProfile.CrashesEnabled wrong")
	}
}
