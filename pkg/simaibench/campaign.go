package simaibench

import (
	"simaibench/internal/experiments"
	"simaibench/internal/loadgen"
	"simaibench/internal/schedule"
)

// Campaign API: the facility-scale scheduling layer behind the
// "campaign" scenario, exposed for programmatic use. A registered-
// scenario run goes through RunScenario:
//
//	res, _ := simaibench.RunScenario(ctx, "campaign",
//		simaibench.ScenarioParams{Jobs: 500, Rate: 1.2, Policy: "srpt"})
//	_ = simaibench.ReportResults(os.Stdout, "text", res)
//
// while single cells, custom job streams and custom class mixes use
// GenerateJobs and RunCampaign directly.

// Job is one open-loop workload entry: arrival time, node width,
// service time, deadline, tenant and class.
type Job = loadgen.Job

// JobClass describes one workload class of the generator's mix: a
// selection weight plus size/service/deadline-slack samplers.
type JobClass = loadgen.Class

// LoadConfig parameterizes the open-loop load generator: seeded
// Poisson base rate with diurnal and bursty modulation over a weighted
// class mix. Each modulation axis draws from its own rng stream, so
// arrival timelines are invariant under class reweighting and
// attribute draws are invariant under rate changes.
type LoadConfig = loadgen.Config

// GenerateJobs produces the deterministic open-loop job stream for a
// LoadConfig, in arrival order.
func GenerateJobs(cfg LoadConfig) ([]Job, error) { return loadgen.Generate(cfg) }

// DefaultJobClasses returns the campaign's paper-shaped mix: frequent
// small table2-like jobs, mid-size scale-out jobs, and rare wide
// resilience-campaign jobs.
func DefaultJobClasses() []JobClass { return loadgen.DefaultClasses() }

// SchedulePolicy is a pluggable global scheduling discipline over the
// pending queue (FIFO, EDF, SRPT, Hermod-style hybrid).
type SchedulePolicy = schedule.Policy

// ParseSchedulePolicy converts a policy id ("fifo", "edf", "srpt",
// "hermod") to a SchedulePolicy.
func ParseSchedulePolicy(s string) (SchedulePolicy, error) { return schedule.ParsePolicy(s) }

// SchedulePolicyNames returns the built-in policy ids in canonical
// sweep order.
func SchedulePolicyNames() []string { return schedule.PolicyNames() }

// CampaignConfig drives one (load, policy) campaign cell: facility
// size, job count, offered-load multiple, policy id and crash profile.
type CampaignConfig = experiments.CampaignConfig

// CampaignPoint is one campaign measurement: queueing-delay
// percentiles, slowdown tails, utilization, Jain fairness and job
// outcome counts, plus the arrival-stream signature that pins the
// open-loop invariance contract.
type CampaignPoint = experiments.CampaignPoint

// RunCampaign simulates one campaign cell; equal configs give
// bit-equal points.
func RunCampaign(cfg CampaignConfig) CampaignPoint { return experiments.RunCampaign(cfg) }

// RunCampaignChecked is RunCampaign with errors surfaced: malformed
// policy ids, degenerate generator configs and blown event budgets
// return errors instead of zero-value points.
func RunCampaignChecked(cfg CampaignConfig) (CampaignPoint, error) {
	return experiments.RunCampaignChecked(cfg)
}

// CampaignLoads is the default offered-load sweep of the campaign
// scenario (multiples of facility capacity).
func CampaignLoads() []float64 {
	return append([]float64(nil), experiments.CampaignLoads...)
}
