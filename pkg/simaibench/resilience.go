package simaibench

import (
	"simaibench/internal/cluster"
	"simaibench/internal/experiments"
	"simaibench/internal/faults"
)

// Resilience API: the fault-injection layer behind the "resilience"
// scenario, exposed for programmatic use. A registered-scenario run
// goes through RunScenario:
//
//	res, _ := simaibench.RunScenario(ctx, "resilience",
//		simaibench.ScenarioParams{SweepIters: 150, MTBF: 60, CkptInterval: 4})
//	_ = simaibench.ReportResults(os.Stdout, "text", res)
//
// while single points and custom disturbance profiles use
// RunResilience directly.

// FaultPolicy selects a recovery strategy: fail-stop or
// checkpoint/restart.
type FaultPolicy = faults.Policy

// The recovery policies of the resilience family.
const (
	// FailStop restarts lost work from scratch (no checkpoints).
	FailStop = faults.FailStop
	// CheckpointRestart resumes from the last durable checkpoint staged
	// through the datastore backend.
	CheckpointRestart = faults.CheckpointRestart
)

// ParseFaultPolicy converts a config string ("fail-stop",
// "checkpoint-restart") to a FaultPolicy.
func ParseFaultPolicy(s string) (FaultPolicy, error) { return faults.ParsePolicy(s) }

// FaultProfile describes the disturbance statistics of a campaign:
// seeded per-node crash MTBF and repair time, straggler episodes and
// transient datastore outages. The zero value injects nothing.
type FaultProfile = faults.Profile

// FaultRecovery is a resolved recovery configuration: the policy plus
// checkpoint cadence/size and the straggler re-dispatch switch.
// ResilienceConfig.Recovery derives one from a config (the policy is
// CheckpointRestart exactly when a checkpoint cadence is set).
type FaultRecovery = faults.Recovery

// NodeSet tracks per-node up/down availability with deterministic
// replacement selection — the cluster-side state of the fault layer.
type NodeSet = cluster.NodeSet

// NewNodeSet returns the availability state for a cluster spec, all
// nodes up.
func NewNodeSet(s ClusterSpec) *NodeSet { return cluster.NewNodeSet(s) }

// ResilienceConfig drives one disturbance measurement: the scale-out
// workload plus a fault profile (MTBF, stragglers, outages) and a
// recovery policy (checkpoint cadence and size, straggler
// re-dispatch).
type ResilienceConfig = experiments.ResilienceConfig

// ResiliencePoint is one (MTBF, checkpoint-interval, backend)
// measurement: the scale-out staging observables plus crash counts,
// wasted-work and checkpoint-overhead fractions, and the effective
// (waste-discounted) throughput.
type ResiliencePoint = experiments.ResiliencePoint

// RunResilience simulates one disturbance configuration and returns
// its measurement. Deterministic: equal configs give bit-equal points,
// and the crash timeline is invariant under recovery-policy changes,
// so cadence sweeps compare policies against identical disturbances.
// With a healthy profile the staging observables are bit-identical to
// the equivalent RunScaleOut call.
func RunResilience(cfg ResilienceConfig) ResiliencePoint { return experiments.RunResilience(cfg) }

// RunResilienceChecked is RunResilience under the run guardrails: with
// cfg.MaxEvents set, a runaway simulation aborts with a structured
// BudgetExceeded error instead of looping forever.
func RunResilienceChecked(cfg ResilienceConfig) (ResiliencePoint, error) {
	return experiments.RunResilienceChecked(cfg)
}
