package simaibench

import (
	"context"
	"testing"
)

// TestCampaignFacadeSinglePoint drives the library path end to end:
// generate a job stream, check the policy vocabulary, run one cell.
func TestCampaignFacadeSinglePoint(t *testing.T) {
	cfg := LoadConfig{Seed: 3, RatePerS: 0.5, Jobs: 50, Tenants: 4,
		Classes: DefaultJobClasses()}
	jobs, err := GenerateJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 50 {
		t.Fatalf("%d jobs", len(jobs))
	}
	names := SchedulePolicyNames()
	if len(names) != 4 {
		t.Fatalf("policies: %v", names)
	}
	for _, n := range names {
		if _, err := ParseSchedulePolicy(n); err != nil {
			t.Errorf("ParseSchedulePolicy(%q): %v", n, err)
		}
	}
	pt, err := RunCampaignChecked(CampaignConfig{Load: 0.7, Policy: "hermod", Jobs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Completed != 100 || pt.Util <= 0 {
		t.Fatalf("point: %+v", pt)
	}
}

// TestCampaignScenarioThroughFacade runs the registered scenario via
// RunScenario with narrowed params, as library users would.
func TestCampaignScenarioThroughFacade(t *testing.T) {
	res, err := RunScenario(context.Background(), "campaign",
		ScenarioParams{Jobs: 80, Rate: 0.9, Policy: "srpt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 || len(res.Tables[0].Rows) != 1 {
		t.Fatalf("unexpected result shape: %d tables", len(res.Tables))
	}
	if len(CampaignLoads()) == 0 {
		t.Fatal("no default loads")
	}
}
