package simaibench

import (
	"context"
	"testing"
)

func TestPublicScaleOutPoint(t *testing.T) {
	one := RunScaleOut(ScaleOutConfig{Tenants: 1, Backend: Redis, SizeMB: 8, TrainIters: 80})
	four := RunScaleOut(ScaleOutConfig{Tenants: 4, Backend: Redis, SizeMB: 8, TrainIters: 80})
	if one.Writes == 0 || four.Writes == 0 {
		t.Fatalf("no writes completed: %+v / %+v", one, four)
	}
	if four.StageMeanS < one.StageMeanS {
		t.Fatalf("contention lowered latency: 1 tenant %v vs 4 tenants %v", one.StageMeanS, four.StageMeanS)
	}
}

func TestPublicScaleOutScenario(t *testing.T) {
	res, err := RunScenario(context.Background(), "scale-out",
		ScenarioParams{SweepIters: 60, Tenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != len(Backends()) {
		t.Fatalf("tables = %d, want one per backend", len(res.Tables))
	}
}

func TestPublicCoSchedule(t *testing.T) {
	tenants, err := CoSchedule(Aurora(8), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 4 || len(tenants[0].Nodes) != 2 {
		t.Fatalf("co-schedule = %+v", tenants)
	}
	if SharedDeployment(NodeLocal) || !SharedDeployment(Redis) {
		t.Fatal("SharedDeployment classification wrong")
	}
}
