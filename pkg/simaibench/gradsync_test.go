package simaibench

import (
	"context"
	"testing"
)

func TestPublicGradSyncPoint(t *testing.T) {
	p, err := RunGradSync(GradSyncConfig{Ranks: 64, ModelMB: 4, Algo: "hier", Steps: 40})
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps != 40 || p.StepMeanS <= 0 || p.CollS <= 0 {
		t.Fatalf("degenerate point: %+v", p)
	}
}

func TestPublicAllReduceCost(t *testing.T) {
	topo := AuroraTopology(512)
	algo, err := ParseCollAlgo("hier")
	if err != nil {
		t.Fatal(err)
	}
	hier := AllReduceCost(algo, topo, 512, 0.25, nil)
	ring := AllReduceCost(AlgoRing, topo, 512, 0.25, nil)
	if hier.TimeS >= ring.TimeS {
		t.Fatalf("small-message hier %v should beat ring %v at 512 ranks", hier.TimeS, ring.TimeS)
	}
}

func TestPublicGradSyncScenario(t *testing.T) {
	res, err := RunScenario(context.Background(), "gradsync",
		ScenarioParams{SweepIters: 20, CollAlgo: "ring"})
	if err != nil {
		t.Fatal(err)
	}
	// One table per rank count; no crossover table on a narrowed axis.
	if len(res.Tables) != 3 {
		t.Fatalf("tables = %d, want one per rank count", len(res.Tables))
	}
}
