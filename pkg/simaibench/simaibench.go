// Package simaibench is the public API of the SimAI-Bench reproduction:
// a framework for composing and benchmarking mini-apps of coupled
// AI-simulation workflows, following Tummalapalli et al., "In-Transit
// Data Transport Strategies for Coupled AI-Simulation Workflow Patterns"
// (SC 2025).
//
// The API mirrors the paper's Python package (its Listing 1):
//
//	mgr, _ := simaibench.NewServerManager(simaibench.ServerConfig{
//		Backend: simaibench.NodeLocal,
//	})
//	info, _ := mgr.Start()
//	defer mgr.Stop()
//
//	w := simaibench.NewWorkflow("demo")
//	w.Register(simaibench.Component{
//		Name: "sim",
//		Body: func(ctx simaibench.Ctx) error {
//			store, _ := simaibench.Connect(info)
//			defer store.Close()
//			sim, _ := simaibench.NewSimulation("sim", cfg,
//				simaibench.SimWithStore(store))
//			sim.Run(100)
//			return sim.StageWrite("key1", data)
//		},
//	})
//	w.Launch(context.Background())
//
// Components: Simulation emulates solvers from configurable kernel
// sequences; AI emulates training with a real feed-forward network and
// DDP semantics; ServerManager deploys the four data-transport backends
// (Redis, DragonHPC-style dictionary, node-local, file system); the
// DataStore client exposes the uniform stage_write / stage_read /
// poll_staged_data / clean_staged_data interface over all of them.
package simaibench

import (
	"simaibench/internal/ai"
	"simaibench/internal/clock"
	"simaibench/internal/config"
	"simaibench/internal/datastore"
	"simaibench/internal/simulation"
	"simaibench/internal/trace"
	"simaibench/internal/workflow"
)

// Data-transport backends (the paper's four).
const (
	Redis      = datastore.Redis
	Dragon     = datastore.Dragon
	NodeLocal  = datastore.NodeLocal
	FileSystem = datastore.FileSystem
)

// Backend identifies a data-transport implementation.
type Backend = datastore.Backend

// ParseBackend converts a CLI string ("redis", "dragon", "node-local",
// "filesystem") to a Backend.
func ParseBackend(s string) (Backend, error) { return datastore.ParseBackend(s) }

// Backends lists all four backends.
func Backends() []Backend { return datastore.Backends() }

// Store is the uniform data-transport client API.
type Store = datastore.Store

// ClientInfo describes a running deployment for clients.
type ClientInfo = datastore.ClientInfo

// ServerConfig configures a backend deployment.
type ServerConfig = datastore.ServerConfig

// ServerManager deploys and tears down data-staging backends.
type ServerManager = datastore.ServerManager

// ErrNotStaged reports a read of a key with no staged value.
var ErrNotStaged = datastore.ErrNotStaged

// NewServerManager builds a manager; call Start to deploy.
func NewServerManager(cfg ServerConfig) (*ServerManager, error) {
	return datastore.NewServerManager(cfg)
}

// Connect opens a client store against a running deployment.
func Connect(info ClientInfo) (Store, error) { return datastore.Connect(info) }

// StartBackend deploys a backend with default sizing.
func StartBackend(b Backend, baseDir string) (*ServerManager, ClientInfo, error) {
	return datastore.StartBackend(b, baseDir)
}

// Workflow is the orchestration layer: registered components with an
// explicit dependency DAG.
type Workflow = workflow.Workflow

// Component is one workflow node.
type Component = workflow.Component

// Ctx is passed to component bodies.
type Ctx = workflow.Ctx

// Launch types for components.
const (
	Local  = workflow.Local
	Remote = workflow.Remote
)

// NewWorkflow returns an empty workflow; options (WorkflowWithClock)
// configure it at construction.
func NewWorkflow(name string, opts ...workflow.Option) *Workflow {
	return workflow.New(name, opts...)
}

// Clock is the emulation layer's time source: WallClock is the paper's
// genuine-compute real-time mode; a VirtualClock runs the same
// components deterministically at DES speed.
type Clock = clock.Clock

// VirtualClock is the deterministic simulated emulation clock.
type VirtualClock = clock.Virtual

// WallClock is the shared real-time clock.
var WallClock = clock.Wall

// NewVirtualClock returns a fresh virtual clock at the shared epoch.
func NewVirtualClock() *VirtualClock { return clock.NewVirtual() }

// ClockFromKind resolves "virtual" (or empty) to a fresh virtual clock
// and "wall" to the wall clock.
func ClockFromKind(kind string) (Clock, error) { return clock.FromKind(kind) }

// WorkflowWithClock launches a workflow's components against the given
// emulation clock, operating the virtual clock's participant barrier
// across the component DAG.
var WorkflowWithClock = workflow.WithClock

// Simulation emulates a solver component.
type Simulation = simulation.Simulation

// SimulationConfig is the JSON-configurable kernel sequence (Listing 2).
type SimulationConfig = config.SimulationConfig

// KernelSpec configures one kernel of a simulation.
type KernelSpec = config.KernelSpec

// DistSpec is a fixed-or-stochastic run_time / run_count parameter.
type DistSpec = config.DistSpec

// NewSimulation compiles a configuration into a runnable component.
func NewSimulation(name string, cfg SimulationConfig, opts ...simulation.Option) (*Simulation, error) {
	return simulation.New(name, cfg, opts...)
}

// Simulation options.
var (
	SimWithStore     = simulation.WithStore
	SimWithComm      = simulation.WithComm
	SimWithTimeline  = simulation.WithTimeline
	SimWithSeed      = simulation.WithSeed
	SimWithTimeScale = simulation.WithTimeScale
	SimWithWorkDir   = simulation.WithWorkDir
	SimWithClock     = simulation.WithClock
)

// LoadSimulationConfig reads a Listing-2-style JSON file.
func LoadSimulationConfig(path string) (SimulationConfig, error) {
	return config.LoadSimulation(path)
}

// ParseSimulationConfig decodes a Listing-2-style JSON document.
func ParseSimulationConfig(data []byte) (SimulationConfig, error) {
	return config.ParseSimulation(data)
}

// AI emulates a training component with a real feed-forward network.
type AI = ai.Trainer

// AIConfig configures an AI component.
type AIConfig = config.AIConfig

// NewAI builds a trainer.
func NewAI(name string, cfg AIConfig, opts ...ai.Option) (*AI, error) {
	return ai.New(name, cfg, opts...)
}

// AI options.
var (
	AIWithStore     = ai.WithStore
	AIWithComm      = ai.WithComm
	AIWithTimeline  = ai.WithTimeline
	AIWithSeed      = ai.WithSeed
	AIWithTimeScale = ai.WithTimeScale
	AIWithClock     = ai.WithClock
)

// LoadAIConfig reads an AI config JSON file.
func LoadAIConfig(path string) (AIConfig, error) { return config.LoadAI(path) }

// EncodeFloat64s / DecodeFloat64s are the staging wire format for
// training arrays.
var (
	EncodeFloat64s = ai.EncodeFloat64s
	DecodeFloat64s = ai.DecodeFloat64s
)

// Timeline records component execution spans (compute, transfer, init)
// for Fig-2-style rendering; attach with SimWithTimeline/AIWithTimeline.
type Timeline = trace.Timeline

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return trace.New() }
