package simaibench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestScenarioRegistryExposed: the library surface must enumerate the
// same registry the CLI runs, with every seed scenario present.
func TestScenarioRegistryExposed(t *testing.T) {
	names := ScenarioNames()
	byName := map[string]bool{}
	for _, n := range names {
		byName[n] = true
	}
	for _, want := range []string{"table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "streaming", "ablation"} {
		if !byName[want] {
			t.Errorf("scenario %q not exposed (have %v)", want, names)
		}
	}
	if len(Scenarios()) != len(names) {
		t.Fatalf("Scenarios()/ScenarioNames() disagree: %d vs %d", len(Scenarios()), len(names))
	}
	if _, ok := LookupScenario("fig3"); !ok {
		t.Fatal("LookupScenario(fig3) failed")
	}
}

// TestRunScenarioProgrammatic runs a small fig5 sweep through the
// public API and renders it as JSON — the machine-readable path.
func TestRunScenarioProgrammatic(t *testing.T) {
	res, err := RunScenario(context.Background(), "fig5", ScenarioParams{Transfers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "fig5" || len(res.Tables) != 1 {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	var buf bytes.Buffer
	if err := ReportResults(&buf, "json", res); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Scenario string `json:"scenario"`
			Tables   []struct {
				Rows []map[string]any `json:"rows"`
			} `json:"tables"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON output invalid: %v", err)
	}
	rows := doc.Results[0].Tables[0].Rows
	if len(rows) == 0 {
		t.Fatal("no per-point records in JSON output")
	}
	if _, ok := rows[0]["read_gbps"].(float64); !ok {
		t.Fatalf("record missing read_gbps: %v", rows[0])
	}
}

func TestRunScenarioErrors(t *testing.T) {
	if _, err := RunScenario(context.Background(), "no-such", ScenarioParams{}); err == nil ||
		!strings.Contains(err.Error(), "fig3") {
		t.Fatalf("unknown scenario error should list valid ids, got %v", err)
	}
	if _, err := RunScenario(context.Background(), "all", ScenarioParams{}); err == nil ||
		!strings.Contains(err.Error(), "group") {
		t.Fatalf("running a group as a scenario should error, got %v", err)
	}
	ss, err := ResolveScenarios("all")
	if err != nil || len(ss) == 0 {
		t.Fatalf("ResolveScenarios(all) = %v, %v", ss, err)
	}
}
