package simaibench

import (
	"simaibench/internal/cluster"
	"simaibench/internal/datastore"
	"simaibench/internal/experiments"
)

// Multi-tenant scale-out API: the contention layer behind the
// "scale-out" scenario, exposed for programmatic use. A registered-
// scenario run goes through RunScenario:
//
//	res, _ := simaibench.RunScenario(ctx, "scale-out",
//		simaibench.ScenarioParams{SweepIters: 120, Tenants: 4})
//	_ = simaibench.ReportResults(os.Stdout, "text", res)
//
// while single points and custom grids use RunScaleOut directly (see
// examples/multi-tenant).

// ClusterSpec describes a homogeneous simulated cluster partition.
type ClusterSpec = cluster.Spec

// Aurora returns the paper's testbed spec scaled to the given node
// count.
func Aurora(nodes int) ClusterSpec { return cluster.Aurora(nodes) }

// Tenant is one co-scheduled workflow instance: an id plus the node
// indices it is placed on.
type Tenant = cluster.Tenant

// CoSchedule places n concurrent workflow instances of nodesPer nodes
// each onto the partition, round-robin; with insufficient nodes the
// placement wraps and tenants share nodes (oversubscription).
func CoSchedule(s ClusterSpec, n, nodesPer int) ([]Tenant, error) {
	return cluster.CoSchedule(s, n, nodesPer)
}

// Oversubscription reports the mean tenant placements per occupied node
// of a CoSchedule result: 1.0 for dedicated blocks, above 1 when
// tenants share nodes.
func Oversubscription(s ClusterSpec, tenants []Tenant) float64 {
	return cluster.Oversubscription(s, tenants)
}

// SharedDeployment reports whether a deployment of backend b is shared
// infrastructure that serializes concurrent tenants (Redis, Dragon,
// FileSystem) or per-node storage that scales with them (NodeLocal).
func SharedDeployment(b Backend) bool { return datastore.SharedDeployment(b) }

// ScaleOutConfig drives one multi-tenant measurement: N concurrent
// one-to-one workflows staging through a single shared deployment.
type ScaleOutConfig = experiments.ScaleOutConfig

// ScaleOutPoint is one (tenants, backend, size) measurement: per-process
// throughput, staging-latency mean/p50, shared-queue delay and the
// aggregate (collapse-curve) throughput.
type ScaleOutPoint = experiments.ScaleOutPoint

// RunScaleOut simulates one multi-tenant configuration and returns its
// measurement. Deterministic: equal configs give bit-equal points.
func RunScaleOut(cfg ScaleOutConfig) ScaleOutPoint { return experiments.RunScaleOut(cfg) }

// RunScaleOutChecked is RunScaleOut under the run guardrails: with
// cfg.MaxEvents set, a runaway simulation aborts with a structured
// BudgetExceeded error instead of looping forever.
func RunScaleOutChecked(cfg ScaleOutConfig) (ScaleOutPoint, error) {
	return experiments.RunScaleOutChecked(cfg)
}
