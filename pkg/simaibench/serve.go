package simaibench

import (
	"context"

	"simaibench/internal/serve"
)

// Simulation-as-a-service: the public surface of the serving layer
// (internal/serve). Serve runs the whole service — content-addressed
// result cache, singleflight deduplication, bounded admission with
// 429 shedding, hardened per-run execution and graceful drain — under a
// caller-supplied context; ServeClient talks to one with typed errors.
// Library users embedding the server in a larger process use
// NewSimServer + (*SimServer).Handler instead.

// ServeConfig are the serving robustness knobs: listen address, worker
// and queue bounds, cache size, drain and run deadlines, the default DES
// event budget, and retry policy. The zero value serves on :8080 with
// the documented defaults.
type ServeConfig = serve.Config

// SimServer is the simulation service. Create with NewSimServer, then
// mount Handler in a mux or run ListenAndServe; Shutdown drains
// gracefully.
type SimServer = serve.Server

// ServeStats is the /statz counter snapshot: cache hits and misses,
// dedup joins, shed count, evictions and readiness.
type ServeStats = serve.Stats

// NewSimServer builds a SimServer and starts its worker pool. Callers
// that never ListenAndServe must call Shutdown to release the workers.
func NewSimServer(cfg ServeConfig) *SimServer { return serve.New(cfg) }

// Serve runs the simulation service until ctx is cancelled, then drains
// gracefully: readiness flips first, new runs receive typed 503s,
// in-flight runs finish up to ServeConfig.DrainTimeout and every
// completed result is flushed before it returns. Returns nil after a
// clean drain and ErrDrainTimeout when the deadline forced abandonment.
func Serve(ctx context.Context, cfg ServeConfig) error {
	return serve.New(cfg).ListenAndServe(ctx)
}

// ErrDrainTimeout reports that graceful shutdown hit its drain deadline
// and abandoned still-running work.
var ErrDrainTimeout = serve.ErrDrainTimeout

// RunRequest is the body of POST /v1/run: scenario id, parameters,
// identity seed and deadline.
type RunRequest = serve.RunRequest

// RunResponse is the success body of POST /v1/run: the result's content
// address, the structured scenario outcome, and machine-readable kinds
// for any per-cell guardrail failures.
type RunResponse = serve.RunResponse

// ServeAPIError is the typed error of the serving API: HTTP status,
// machine-readable kind and a retry hint.
type ServeAPIError = serve.APIError

// ScenarioServiceInfo is one entry of GET /v1/scenarios: id, description
// and paper-default parameters.
type ScenarioServiceInfo = serve.ScenarioInfo

// ServeClient is a typed client for the serving API; server failures
// come back as *ServeAPIError so callers switch on Kind.
type ServeClient = serve.Client
