package simaibench

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// The public guardrail surface: hardened sweeps isolate panics and
// retry transient failures, the Checked harnesses surface budget trips
// as BudgetExceeded, and guarded scenario runs carry failed cells in
// ScenarioResult.Failures.
func TestPublicHardenedSweep(t *testing.T) {
	attempts := 0
	rep := RunCells(context.Background(), 3, SweepOptions{Retries: 2},
		func(_ context.Context, i int) (int, error) {
			switch i {
			case 1:
				panic("public saboteur")
			case 2:
				attempts++
				if attempts == 1 {
					return 0, Retryable(errors.New("transient"))
				}
			}
			return i * 10, nil
		})
	if rep.OK() {
		t.Fatal("OK() true with a panicking cell")
	}
	if len(rep.Failures) != 1 || rep.Failures[0].Index != 1 {
		t.Fatalf("failures = %v, want exactly cell 1", rep.Failures)
	}
	var pe *PanicError
	if !errors.As(rep.Failures[0].Err, &pe) {
		t.Fatalf("cell 1 error = %v, want PanicError", rep.Failures[0].Err)
	}
	if rep.Status[0] != CellOK || rep.Status[1] != CellFailed || rep.Status[2] != CellOK {
		t.Fatalf("statuses = %v", rep.Status)
	}
	if attempts != 2 {
		t.Fatalf("retryable cell made %d attempts, want 2", attempts)
	}
	if got := rep.Completed(); len(got) != 2 || got[0] != 0 || got[1] != 20 {
		t.Fatalf("Completed() = %v", got)
	}
}

func TestPublicCheckedHarnessBudget(t *testing.T) {
	_, err := RunScaleOutChecked(ScaleOutConfig{TrainIters: 50, MaxEvents: 20})
	var be *BudgetExceeded
	if !errors.As(err, &be) || be.Events < 20 {
		t.Fatalf("error = %v, want BudgetExceeded after 20 events", err)
	}
	if _, err := RunResilienceChecked(ResilienceConfig{TrainIters: 50}); err != nil {
		t.Fatalf("unguarded checked run failed: %v", err)
	}
}

func TestPublicScenarioGuardrails(t *testing.T) {
	res, err := RunScenario(context.Background(), "fig5",
		ScenarioParams{Transfers: 5, MaxEvents: 10})
	if err != nil {
		t.Fatalf("budget-starved scenario aborted instead of reporting failures: %v", err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("no CellFailure records from budget-starved cells")
	}
	var f CellFailure = res.Failures[0]
	if f.Sweep != "fig5" || !strings.Contains(f.Error, "event budget exceeded") {
		t.Fatalf("failure record = %+v", f)
	}
}
