package simaibench

import (
	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/experiments"
	"simaibench/internal/mpi"
)

// Gradient-synchronization API: the collective-algorithm and dragonfly-
// topology layer behind the "gradsync" scenario, exposed for
// programmatic use. A registered-scenario run goes through RunScenario:
//
//	res, _ := simaibench.RunScenario(ctx, "gradsync",
//		simaibench.ScenarioParams{SweepIters: 120, CollAlgo: "hier"})
//	_ = simaibench.ReportResults(os.Stdout, "text", res)
//
// while single points and custom grids use RunGradSync directly, and
// AllReduceCost prices a collective without simulating anything.

// Topology is an explicit dragonfly interconnect: group/router/node
// shape plus per-hop-class link bandwidth and latency.
type Topology = cluster.Topology

// AuroraTopology returns the paper's Slingshot-like dragonfly sized to
// hold the given node count, the interconnect behind Aurora(nodes).
func AuroraTopology(nodes int) Topology { return cluster.AuroraTopology(nodes) }

// CollAlgo identifies one modeled collective algorithm: AlgoFlat (the
// legacy single-cost rendezvous), AlgoRing, AlgoTree or AlgoHier.
type CollAlgo = mpi.CollAlgo

// Collective algorithm identifiers, re-exported from the mpi layer.
const (
	AlgoFlat = mpi.AlgoFlat
	AlgoRing = mpi.AlgoRing
	AlgoTree = mpi.AlgoTree
	AlgoHier = mpi.AlgoHier
)

// ParseCollAlgo resolves an algorithm name ("flat", "ring", "tree",
// "hier"; empty = flat) to its identifier, erroring on unknown names.
func ParseCollAlgo(s string) (CollAlgo, error) { return mpi.ParseCollAlgo(s) }

// CollCost is one collective's modeled cost profile: synchronized
// communication steps and total seconds per call.
type CollCost = mpi.CollCost

// AllReduceCost prices one n-rank AllReduce of mb megabytes under an
// algorithm over a dragonfly topology (rankNode nil = rank i on
// node i) — the analytic model behind every gradsync point.
func AllReduceCost(algo CollAlgo, topo Topology, n int, mb float64, rankNode []int) CollCost {
	return costmodel.CollAllReduceCost(algo, topo, n, mb, rankNode)
}

// GradSyncConfig drives one gradient-synchronization measurement:
// Ranks data-parallel trainers AllReducing a ModelMB gradient with the
// Algo collective every training step.
type GradSyncConfig = experiments.GradSyncConfig

// GradSyncPoint is one (ranks, size, algorithm) measurement: the
// collective's cost profile, mean step time, communication fraction
// and straggler skew.
type GradSyncPoint = experiments.GradSyncPoint

// RunGradSync simulates one gradient-synchronization configuration and
// returns its measurement. Deterministic: equal configs give bit-equal
// points at any Workers setting; with cfg.MaxEvents set, a runaway
// simulation aborts with a structured budget error.
func RunGradSync(cfg GradSyncConfig) (GradSyncPoint, error) {
	return experiments.RunGradSync(cfg)
}
