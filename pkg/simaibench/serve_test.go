package simaibench

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// The public serving surface, end to end against the real registry: a
// library user mounts NewSimServer().Handler(), talks to it with the typed
// client, and gets cache semantics plus typed errors without touching
// internal packages.

func TestServeLibrarySurface(t *testing.T) {
	s := NewSimServer(ServeConfig{Workers: 2, CacheSize: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	c := &ServeClient{BaseURL: ts.URL}
	ctx := context.Background()

	infos, err := c.Scenarios(ctx)
	if err != nil || len(infos) == 0 {
		t.Fatalf("Scenarios: %v (%d entries)", err, len(infos))
	}

	req := RunRequest{Scenario: "fig5", Params: ScenarioParams{SweepIters: 40}, Seed: 1}
	cold, hit, err := c.Run(ctx, req)
	if err != nil || hit {
		t.Fatalf("cold run: %v (cached %v)", err, hit)
	}
	if cold.Scenario != "fig5" || cold.Result == nil || len(cold.Result.Tables) == 0 {
		t.Fatalf("cold run returned a hollow result: %+v", cold)
	}
	hot, hit, err := c.Run(ctx, req)
	if err != nil || !hit {
		t.Fatalf("hot run: %v (cached %v, want hit)", err, hit)
	}
	if hot.Key != cold.Key {
		t.Fatalf("hot and cold keys differ: %s vs %s", hot.Key, cold.Key)
	}

	_, _, err = c.Run(ctx, RunRequest{Scenario: "no-such"})
	ae, ok := err.(*ServeAPIError)
	if !ok || ae.Kind != "unknown_scenario" {
		t.Fatalf("want typed unknown_scenario error, got %T: %v", err, err)
	}

	st, err := c.Stats(ctx)
	if err != nil || st.CacheHits < 1 || st.CacheMisses < 1 {
		t.Fatalf("Stats: %v %+v", err, st)
	}
}
