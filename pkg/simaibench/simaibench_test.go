package simaibench

import (
	"context"
	"testing"
)

// TestListing1Workflow reproduces the paper's Listing 1 end to end
// through the public API: a server deployment, two components with a
// dependency, cross-component staging, launch, teardown.
func TestListing1Workflow(t *testing.T) {
	mgr, err := NewServerManager(ServerConfig{Backend: NodeLocal, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	info, err := mgr.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	cfg, err := ParseSimulationConfig([]byte(`{
		"kernels": [{
			"name": "iter",
			"mini_app_kernel": "MatMulSimple2D",
			"run_time": 0.001,
			"data_size": [32, 32],
			"device": "xpu"
		}]
	}`))
	if err != nil {
		t.Fatal(err)
	}

	w := NewWorkflow("listing1")
	err = w.Register(Component{
		Name:  "sim",
		Type:  Remote,
		Ranks: 2,
		Body: func(ctx Ctx) error {
			store, err := Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			sim, err := NewSimulation("sim", cfg, SimWithStore(store), SimWithComm(ctx.Comm))
			if err != nil {
				return err
			}
			if err := sim.Run(3); err != nil {
				return err
			}
			if ctx.Comm.Rank() == 0 {
				return sim.StageWrite("key1", []byte("value1"))
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Register(Component{
		Name: "sim2",
		Deps: []string{"sim"},
		Body: func(ctx Ctx) error {
			store, err := Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			sim, err := NewSimulation("sim2", cfg, SimWithStore(store))
			if err != nil {
				return err
			}
			v, err := sim.StageRead("key1")
			if err != nil {
				return err
			}
			if string(v) != "value1" {
				t.Errorf("staged value = %q", v)
			}
			if err := sim.StageWrite("key2", []byte("value2")); err != nil {
				return err
			}
			return sim.Run(2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	// key2 visible after the workflow completes.
	store, err := Connect(info)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	v, err := store.StageRead("key2")
	if err != nil || string(v) != "value2" {
		t.Fatalf("key2 = %q, %v", v, err)
	}
}

func TestPublicAIRoundTrip(t *testing.T) {
	mgr, info, err := StartBackend(NodeLocal, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	store, err := Connect(info)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	trainer, err := NewAI("trainer", AIConfig{Layers: []int{4, 8, 2}}, AIWithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 40)
	if err := store.StageWrite("snap", EncodeFloat64s(data)); err != nil {
		t.Fatal(err)
	}
	if err := trainer.UpdateLoader("snap"); err != nil {
		t.Fatal(err)
	}
	if trainer.LoaderSize() != 10 {
		t.Fatalf("loader = %d", trainer.LoaderSize())
	}
	if _, err := trainer.Train(3); err != nil {
		t.Fatal(err)
	}
}

func TestParseBackendPublic(t *testing.T) {
	for _, b := range Backends() {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("round trip %v failed: %v", b, err)
		}
	}
}
